package sql

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"trapp/internal/aggregate"
	"trapp/internal/predicate"
	"trapp/internal/query"
	"trapp/internal/relation"
)

// Catalog resolves table names to schemas during parsing.
type Catalog interface {
	// SchemaOf returns the schema of the named table, or false.
	SchemaOf(table string) (*relation.Schema, bool)
}

// MapCatalog is a Catalog backed by a map.
type MapCatalog map[string]*relation.Schema

// SchemaOf looks up the table's schema.
func (m MapCatalog) SchemaOf(table string) (*relation.Schema, bool) {
	s, ok := m[table]
	return s, ok
}

// Error is a parse error with the byte offset of the offending token in
// the statement, so front ends can point at the problem. Every error the
// lexer and parser produce is an *Error; use errors.As to recover the
// position.
type Error struct {
	// Pos is the 0-based byte offset into the statement.
	Pos int
	// Msg describes the problem, without position or "sql:" prefix.
	Msg string
}

// Error formats the message with its position.
func (e *Error) Error() string {
	return fmt.Sprintf("sql: %s at position %d", e.Msg, e.Pos)
}

// errAt builds a positioned parse error.
func errAt(pos int, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// Parse compiles a single-aggregate TRAPP/AG query string against the
// catalog, producing an executable query.Query with the predicate bound
// to column indexes. Statements selecting several aggregates are
// rejected; use ParseAll, which compiles them into a batch sharing one
// scan and refresh round (trapp.ExecuteBatch).
func Parse(src string, cat Catalog) (query.Query, error) {
	qs, err := ParseAll(src, cat)
	if err != nil {
		return query.Query{}, err
	}
	if len(qs) != 1 {
		return query.Query{}, errAt(0, "statement selects %d aggregates; use the multi-aggregate entry point (ParseAll)", len(qs))
	}
	return qs[0], nil
}

// ParseAll compiles a TRAPP/AG statement that may select several
// aggregates in one SELECT list:
//
//	SELECT MIN(v), MAX(v) WITHIN 5 FROM t WHERE pred
//
// One query.Query is produced per select item; WITHIN, FROM, WHERE and
// GROUP BY are shared by all of them. The resulting queries are intended
// for ExecuteBatch, which shares one classification scan per (table,
// column, predicate) shape and one deduped refresh round across the
// statement.
func ParseAll(src string, cat Catalog) ([]query.Query, error) {
	st, err := parseWith(src, cat, false)
	return st.Queries, err
}

// Statement is one fully parsed statement: the compiled queries plus
// statement-level modifiers.
type Statement struct {
	// Queries are the compiled queries, one per select item.
	Queries []query.Query
	// Explain reports an EXPLAIN ANALYZE prefix: execute the statement
	// and return its span trace alongside the answer.
	Explain bool
}

// ParseStatement compiles a statement like ParseAll but also accepts the
// EXPLAIN ANALYZE prefix:
//
//	EXPLAIN ANALYZE SELECT SUM(v) WITHIN 10 FROM t
//
// which asks the executor to run the query with tracing enabled and
// return the span tree. The service layer parses with this entry point;
// ParseAll (and the embedded helpers built on it) keep rejecting
// EXPLAIN, since they have no way to return a trace.
func ParseStatement(src string, cat Catalog) (Statement, error) {
	return parseWith(src, cat, true)
}

// parseWith is the shared statement entry point.
func parseWith(src string, cat Catalog, allowExplain bool) (Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return Statement{}, err
	}
	p := &parser{toks: toks, cat: cat}
	var st Statement
	if allowExplain && p.cur().isKeyword("EXPLAIN") {
		p.advance()
		if err := p.expectKeyword("ANALYZE"); err != nil {
			return Statement{}, err
		}
		st.Explain = true
	}
	st.Queries, err = p.parseStatement()
	if err != nil {
		return Statement{}, err
	}
	if !p.at(tokEOF) {
		return Statement{}, errAt(p.cur().pos, "trailing input %q", p.cur().text)
	}
	return st, nil
}

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks   []token
	i      int
	cat    Catalog
	table  string
	schema *relation.Schema
}

func (p *parser) cur() token          { return p.toks[p.i] }
func (p *parser) at(k tokenKind) bool { return p.cur().kind == k }

func (p *parser) advance() token {
	t := p.cur()
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) expect(k tokenKind, what string) (token, error) {
	if !p.at(k) {
		return token{}, errAt(p.cur().pos, "expected %s, found %q", what, p.cur().text)
	}
	return p.advance(), nil
}

func (p *parser) expectKeyword(kw string) error {
	if !p.cur().isKeyword(kw) {
		return errAt(p.cur().pos, "expected %s, found %q", kw, p.cur().text)
	}
	p.advance()
	return nil
}

// selectItem is one AGG(col) of the select list, recorded before the
// FROM clause binds its column.
type selectItem struct {
	fn       aggregate.Func
	aggTable string // optional table qualifier
	col      string
	colPos   int
	tablePos int
}

// parseStatement parses the full statement. The FROM clause is parsed
// after the select list, so a two-pass structure records the aggregate
// tokens first and binds columns once the schema is known.
func (p *parser) parseStatement() ([]query.Query, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	var items []selectItem
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		items = append(items, item)
		if !p.at(tokComma) {
			break
		}
		p.advance()
	}

	within := math.Inf(1)
	relative := 0.0
	if p.cur().isKeyword("WITHIN") {
		p.advance()
		numTok, err := p.expect(tokNumber, "precision constraint")
		if err != nil {
			return nil, err
		}
		r, err := strconv.ParseFloat(numTok.text, 64)
		if err != nil || r < 0 {
			return nil, errAt(numTok.pos, "invalid precision constraint %q", numTok.text)
		}
		if p.at(tokPercent) {
			// Relative precision constraint (§8.1): WITHIN 5% means the
			// answer width is at most 2·|A|·0.05 for the true answer A.
			p.advance()
			relative = r / 100
		} else {
			within = r
		}
	}

	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	tblTok, err := p.expect(tokIdent, "table name")
	if err != nil {
		return nil, err
	}
	schema, ok := p.cat.SchemaOf(tblTok.text)
	if !ok {
		return nil, errAt(tblTok.pos, "unknown table %q", tblTok.text)
	}
	p.table, p.schema = tblTok.text, schema

	var where predicate.Expr
	if p.cur().isKeyword("WHERE") {
		p.advance()
		where, err = p.parseOr()
		if err != nil {
			return nil, err
		}
	}

	var groupBy []string
	if p.cur().isKeyword("GROUP") {
		p.advance()
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			colTok, err := p.expect(tokIdent, "grouping column")
			if err != nil {
				return nil, err
			}
			ci, ok := schema.Lookup(colTok.text)
			if !ok {
				return nil, errAt(colTok.pos, "unknown grouping column %q in table %q", colTok.text, p.table)
			}
			if schema.Column(ci).Kind != relation.Exact {
				return nil, errAt(colTok.pos, "grouping column %q must be exact", colTok.text)
			}
			groupBy = append(groupBy, colTok.text)
			if !p.at(tokComma) {
				break
			}
			p.advance()
		}
	}

	qs := make([]query.Query, 0, len(items))
	for _, item := range items {
		if item.aggTable != "" && item.aggTable != p.table {
			return nil, errAt(item.tablePos, "aggregate over table %q but FROM %q", item.aggTable, p.table)
		}
		if _, ok := schema.Lookup(item.col); !ok {
			return nil, errAt(item.colPos, "unknown column %q in table %q", item.col, p.table)
		}
		qs = append(qs, query.Query{
			Table:          p.table,
			Agg:            item.fn,
			Column:         item.col,
			Within:         within,
			RelativeWithin: relative,
			Where:          where,
			GroupBy:        groupBy,
		})
	}
	return qs, nil
}

// parseSelectItem parses one AGG(col) or AGG(table.col).
func (p *parser) parseSelectItem() (selectItem, error) {
	var item selectItem
	aggTok, err := p.expect(tokIdent, "aggregate function")
	if err != nil {
		return item, err
	}
	fn, err := aggregate.ParseFunc(strings.ToUpper(aggTok.text))
	if err != nil {
		return item, errAt(aggTok.pos, "%v", err)
	}
	item.fn = fn
	if _, err := p.expect(tokLParen, "("); err != nil {
		return item, err
	}
	first, err := p.expect(tokIdent, "column name")
	if err != nil {
		return item, err
	}
	item.col, item.colPos = first.text, first.pos
	if p.at(tokDot) {
		p.advance()
		colTok, err := p.expect(tokIdent, "column name after '.'")
		if err != nil {
			return item, err
		}
		item.aggTable, item.tablePos = first.text, first.pos
		item.col, item.colPos = colTok.text, colTok.pos
	}
	if _, err := p.expect(tokRParen, ")"); err != nil {
		return item, err
	}
	return item, nil
}

// parseOr := parseAnd (OR parseAnd)*
func (p *parser) parseOr() (predicate.Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.cur().isKeyword("OR") {
		p.advance()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = predicate.NewOr(left, right)
	}
	return left, nil
}

// parseAnd := parseUnary (AND parseUnary)*
func (p *parser) parseAnd() (predicate.Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.cur().isKeyword("AND") {
		p.advance()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = predicate.NewAnd(left, right)
	}
	return left, nil
}

// parseUnary := NOT parseUnary | '(' parseOr ')' | comparison
func (p *parser) parseUnary() (predicate.Expr, error) {
	if p.cur().isKeyword("NOT") {
		p.advance()
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return predicate.NewNot(e), nil
	}
	if p.at(tokLParen) {
		// Could be a parenthesized boolean or a parenthesized operand of a
		// comparison; TRAPP predicates only parenthesize booleans, so
		// treat it as a boolean group.
		p.advance()
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, ")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	return p.parseComparison()
}

// parseComparison := operand op operand
func (p *parser) parseComparison() (predicate.Expr, error) {
	left, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	opTok, err := p.expect(tokOp, "comparison operator")
	if err != nil {
		return nil, err
	}
	var op predicate.Op
	switch opTok.text {
	case "<":
		op = predicate.Lt
	case "<=":
		op = predicate.Le
	case ">":
		op = predicate.Gt
	case ">=":
		op = predicate.Ge
	case "=":
		op = predicate.Eq
	case "<>", "!=":
		op = predicate.Ne
	default:
		return nil, errAt(opTok.pos, "unknown operator %q", opTok.text)
	}
	right, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	return predicate.NewCmp(left, op, right), nil
}

// parseOperand := number | [table '.'] column
func (p *parser) parseOperand() (predicate.Operand, error) {
	if p.at(tokNumber) {
		t := p.advance()
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return predicate.Operand{}, errAt(t.pos, "bad number %q", t.text)
		}
		return predicate.Const(v), nil
	}
	t, err := p.expect(tokIdent, "column or constant")
	if err != nil {
		return predicate.Operand{}, err
	}
	name, pos := t.text, t.pos
	if p.at(tokDot) {
		p.advance()
		colTok, err := p.expect(tokIdent, "column after '.'")
		if err != nil {
			return predicate.Operand{}, err
		}
		if name != p.table {
			return predicate.Operand{}, errAt(t.pos, "unknown table %q", name)
		}
		name, pos = colTok.text, colTok.pos
	}
	// Reject keyword-looking identifiers in operand position to catch
	// malformed predicates early.
	for _, kw := range []string{"AND", "OR", "NOT", "WHERE", "FROM", "SELECT", "WITHIN", "GROUP"} {
		if strings.EqualFold(name, kw) {
			return predicate.Operand{}, errAt(pos, "unexpected keyword %q", name)
		}
	}
	col, ok := p.schema.Lookup(name)
	if !ok {
		return predicate.Operand{}, errAt(pos, "unknown column %q in table %q", name, p.table)
	}
	return predicate.Column(col, name), nil
}
