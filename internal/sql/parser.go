package sql

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"trapp/internal/aggregate"
	"trapp/internal/predicate"
	"trapp/internal/query"
	"trapp/internal/relation"
)

// Catalog resolves table names to schemas during parsing.
type Catalog interface {
	// SchemaOf returns the schema of the named table, or false.
	SchemaOf(table string) (*relation.Schema, bool)
}

// MapCatalog is a Catalog backed by a map.
type MapCatalog map[string]*relation.Schema

// SchemaOf looks up the table's schema.
func (m MapCatalog) SchemaOf(table string) (*relation.Schema, bool) {
	s, ok := m[table]
	return s, ok
}

// Parse compiles a TRAPP/AG query string against the catalog, producing an
// executable query.Query with the predicate bound to column indexes.
func Parse(src string, cat Catalog) (query.Query, error) {
	toks, err := lex(src)
	if err != nil {
		return query.Query{}, err
	}
	p := &parser{toks: toks, cat: cat}
	q, err := p.parseQuery()
	if err != nil {
		return query.Query{}, err
	}
	if !p.at(tokEOF) {
		return query.Query{}, fmt.Errorf("sql: trailing input at %d: %q", p.cur().pos, p.cur().text)
	}
	return q, nil
}

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks   []token
	i      int
	cat    Catalog
	table  string
	schema *relation.Schema
}

func (p *parser) cur() token          { return p.toks[p.i] }
func (p *parser) at(k tokenKind) bool { return p.cur().kind == k }

func (p *parser) advance() token {
	t := p.cur()
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) expect(k tokenKind, what string) (token, error) {
	if !p.at(k) {
		return token{}, fmt.Errorf("sql: expected %s at %d, found %q", what, p.cur().pos, p.cur().text)
	}
	return p.advance(), nil
}

func (p *parser) expectKeyword(kw string) error {
	if !p.cur().isKeyword(kw) {
		return fmt.Errorf("sql: expected %s at %d, found %q", kw, p.cur().pos, p.cur().text)
	}
	p.advance()
	return nil
}

// parseQuery parses the full statement. The FROM clause is parsed before
// the aggregate's column is bound, so a two-pass structure records the
// aggregate tokens first.
func (p *parser) parseQuery() (query.Query, error) {
	var q query.Query
	q.Within = math.Inf(1)

	if err := p.expectKeyword("SELECT"); err != nil {
		return q, err
	}
	aggTok, err := p.expect(tokIdent, "aggregate function")
	if err != nil {
		return q, err
	}
	fn, err := aggregate.ParseFunc(strings.ToUpper(aggTok.text))
	if err != nil {
		return q, fmt.Errorf("sql: %v at %d", err, aggTok.pos)
	}
	q.Agg = fn
	if _, err := p.expect(tokLParen, "("); err != nil {
		return q, err
	}
	// Column reference: ident or table.ident.
	first, err := p.expect(tokIdent, "column name")
	if err != nil {
		return q, err
	}
	aggTable, aggCol := "", first.text
	if p.at(tokDot) {
		p.advance()
		colTok, err := p.expect(tokIdent, "column name after '.'")
		if err != nil {
			return q, err
		}
		aggTable, aggCol = first.text, colTok.text
	}
	if _, err := p.expect(tokRParen, ")"); err != nil {
		return q, err
	}

	if p.cur().isKeyword("WITHIN") {
		p.advance()
		numTok, err := p.expect(tokNumber, "precision constraint")
		if err != nil {
			return q, err
		}
		r, err := strconv.ParseFloat(numTok.text, 64)
		if err != nil || r < 0 {
			return q, fmt.Errorf("sql: invalid precision constraint %q at %d", numTok.text, numTok.pos)
		}
		if p.at(tokPercent) {
			// Relative precision constraint (§8.1): WITHIN 5% means the
			// answer width is at most 2·|A|·0.05 for the true answer A.
			p.advance()
			q.RelativeWithin = r / 100
		} else {
			q.Within = r
		}
	}

	if err := p.expectKeyword("FROM"); err != nil {
		return q, err
	}
	tblTok, err := p.expect(tokIdent, "table name")
	if err != nil {
		return q, err
	}
	q.Table = tblTok.text
	schema, ok := p.cat.SchemaOf(q.Table)
	if !ok {
		return q, fmt.Errorf("sql: unknown table %q at %d", q.Table, tblTok.pos)
	}
	p.table, p.schema = q.Table, schema

	if aggTable != "" && aggTable != q.Table {
		return q, fmt.Errorf("sql: aggregate over table %q but FROM %q", aggTable, q.Table)
	}
	if _, ok := schema.Lookup(aggCol); !ok {
		return q, fmt.Errorf("sql: unknown column %q in table %q", aggCol, q.Table)
	}
	q.Column = aggCol

	if p.cur().isKeyword("WHERE") {
		p.advance()
		pred, err := p.parseOr()
		if err != nil {
			return q, err
		}
		q.Where = pred
	}

	if p.cur().isKeyword("GROUP") {
		p.advance()
		if err := p.expectKeyword("BY"); err != nil {
			return q, err
		}
		for {
			colTok, err := p.expect(tokIdent, "grouping column")
			if err != nil {
				return q, err
			}
			ci, ok := schema.Lookup(colTok.text)
			if !ok {
				return q, fmt.Errorf("sql: unknown grouping column %q in table %q", colTok.text, q.Table)
			}
			if schema.Column(ci).Kind != relation.Exact {
				return q, fmt.Errorf("sql: grouping column %q must be exact", colTok.text)
			}
			q.GroupBy = append(q.GroupBy, colTok.text)
			if !p.at(tokComma) {
				break
			}
			p.advance()
		}
	}
	return q, nil
}

// parseOr := parseAnd (OR parseAnd)*
func (p *parser) parseOr() (predicate.Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.cur().isKeyword("OR") {
		p.advance()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = predicate.NewOr(left, right)
	}
	return left, nil
}

// parseAnd := parseUnary (AND parseUnary)*
func (p *parser) parseAnd() (predicate.Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.cur().isKeyword("AND") {
		p.advance()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = predicate.NewAnd(left, right)
	}
	return left, nil
}

// parseUnary := NOT parseUnary | '(' parseOr ')' | comparison
func (p *parser) parseUnary() (predicate.Expr, error) {
	if p.cur().isKeyword("NOT") {
		p.advance()
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return predicate.NewNot(e), nil
	}
	if p.at(tokLParen) {
		// Could be a parenthesized boolean or a parenthesized operand of a
		// comparison; TRAPP predicates only parenthesize booleans, so
		// treat it as a boolean group.
		p.advance()
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, ")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	return p.parseComparison()
}

// parseComparison := operand op operand
func (p *parser) parseComparison() (predicate.Expr, error) {
	left, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	opTok, err := p.expect(tokOp, "comparison operator")
	if err != nil {
		return nil, err
	}
	var op predicate.Op
	switch opTok.text {
	case "<":
		op = predicate.Lt
	case "<=":
		op = predicate.Le
	case ">":
		op = predicate.Gt
	case ">=":
		op = predicate.Ge
	case "=":
		op = predicate.Eq
	case "<>", "!=":
		op = predicate.Ne
	default:
		return nil, fmt.Errorf("sql: unknown operator %q at %d", opTok.text, opTok.pos)
	}
	right, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	return predicate.NewCmp(left, op, right), nil
}

// parseOperand := number | [table '.'] column
func (p *parser) parseOperand() (predicate.Operand, error) {
	if p.at(tokNumber) {
		t := p.advance()
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return predicate.Operand{}, fmt.Errorf("sql: bad number %q at %d", t.text, t.pos)
		}
		return predicate.Const(v), nil
	}
	t, err := p.expect(tokIdent, "column or constant")
	if err != nil {
		return predicate.Operand{}, err
	}
	name := t.text
	if p.at(tokDot) {
		p.advance()
		colTok, err := p.expect(tokIdent, "column after '.'")
		if err != nil {
			return predicate.Operand{}, err
		}
		if name != p.table {
			return predicate.Operand{}, fmt.Errorf("sql: unknown table %q at %d", name, t.pos)
		}
		name = colTok.text
	}
	// Reject keyword-looking identifiers in operand position to catch
	// malformed predicates early.
	for _, kw := range []string{"AND", "OR", "NOT", "WHERE", "FROM", "SELECT", "WITHIN"} {
		if strings.EqualFold(name, kw) {
			return predicate.Operand{}, fmt.Errorf("sql: unexpected keyword %q at %d", name, t.pos)
		}
	}
	col, ok := p.schema.Lookup(name)
	if !ok {
		return predicate.Operand{}, fmt.Errorf("sql: unknown column %q in table %q", name, p.table)
	}
	return predicate.Column(col, name), nil
}
