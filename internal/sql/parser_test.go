package sql

import (
	"math"
	"testing"

	"trapp/internal/aggregate"
	"trapp/internal/interval"
	"trapp/internal/predicate"
	"trapp/internal/query"
	"trapp/internal/refresh"
	"trapp/internal/workload"
)

func cat() Catalog {
	return MapCatalog{"links": workload.LinkSchema()}
}

func mustParse(t *testing.T, src string) query.Query {
	t.Helper()
	q, err := Parse(src, cat())
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return q
}

func TestParseMinimal(t *testing.T) {
	q := mustParse(t, "SELECT SUM(latency) FROM links")
	if q.Agg != aggregate.Sum || q.Column != "latency" || q.Table != "links" {
		t.Errorf("query = %+v", q)
	}
	if !math.IsInf(q.Within, 1) {
		t.Errorf("Within = %g, want +Inf", q.Within)
	}
	if q.Where != nil {
		t.Errorf("Where = %v", q.Where)
	}
}

func TestParseWithin(t *testing.T) {
	q := mustParse(t, "SELECT AVG(traffic) WITHIN 10 FROM links")
	if q.Within != 10 || q.Agg != aggregate.Avg {
		t.Errorf("query = %+v", q)
	}
	q = mustParse(t, "SELECT MIN(bandwidth) WITHIN 0.5 FROM links")
	if q.Within != 0.5 {
		t.Errorf("Within = %g", q.Within)
	}
}

func TestParseQualifiedColumn(t *testing.T) {
	q := mustParse(t, "SELECT MAX(links.latency) FROM links")
	if q.Column != "latency" {
		t.Errorf("column = %q", q.Column)
	}
}

func TestParseWhereComparison(t *testing.T) {
	q := mustParse(t, "SELECT COUNT(latency) WITHIN 1 FROM links WHERE latency > 10")
	if q.Where == nil {
		t.Fatal("no predicate")
	}
	if got := q.Where.String(); got != "latency > 10" {
		t.Errorf("predicate = %q", got)
	}
}

func TestParseWhereBoolean(t *testing.T) {
	q := mustParse(t, `SELECT MIN(traffic) WITHIN 10 FROM links
		WHERE (bandwidth > 50) AND (latency < 10)`)
	want := "(bandwidth > 50 AND latency < 10)"
	if got := q.Where.String(); got != want {
		t.Errorf("predicate = %q, want %q", got, want)
	}
	q = mustParse(t, "SELECT SUM(latency) FROM links WHERE NOT latency <= 3 OR traffic = 100")
	if got := q.Where.String(); got != "(NOT (latency <= 3) OR traffic = 100)" {
		t.Errorf("predicate = %q", got)
	}
}

func TestParsePrecedenceAndOverOr(t *testing.T) {
	q := mustParse(t, "SELECT SUM(latency) FROM links WHERE latency > 1 OR latency < 0 AND traffic > 5")
	// AND binds tighter: a OR (b AND c).
	if got := q.Where.String(); got != "(latency > 1 OR (latency < 0 AND traffic > 5))" {
		t.Errorf("predicate = %q", got)
	}
}

func TestParseOperators(t *testing.T) {
	ops := map[string]predicate.Op{
		"<": predicate.Lt, "<=": predicate.Le, ">": predicate.Gt,
		">=": predicate.Ge, "=": predicate.Eq, "<>": predicate.Ne, "!=": predicate.Ne,
	}
	for text, want := range ops {
		q := mustParse(t, "SELECT SUM(latency) FROM links WHERE latency "+text+" 5")
		cmp, ok := q.Where.(*predicate.Cmp)
		if !ok || cmp.Op != want {
			t.Errorf("op %q parsed as %v", text, q.Where)
		}
	}
}

func TestParseColumnToColumn(t *testing.T) {
	q := mustParse(t, "SELECT SUM(latency) FROM links WHERE latency < bandwidth")
	cmp := q.Where.(*predicate.Cmp)
	if cmp.Left.Col < 0 || cmp.Right.Col < 0 {
		t.Errorf("expected two column refs: %+v", cmp)
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	q := mustParse(t, "select min(bandwidth) within 5 from links where traffic > 100")
	if q.Agg != aggregate.Min || q.Within != 5 {
		t.Errorf("query = %+v", q)
	}
}

func TestParseNegativeConstant(t *testing.T) {
	q := mustParse(t, "SELECT SUM(latency) FROM links WHERE latency > -3.5")
	cmp := q.Where.(*predicate.Cmp)
	if cmp.Right.Const != -3.5 {
		t.Errorf("const = %g", cmp.Right.Const)
	}
}

func TestParseScientificNotation(t *testing.T) {
	q := mustParse(t, "SELECT SUM(latency) FROM links WHERE latency < 1e3")
	cmp := q.Where.(*predicate.Cmp)
	if cmp.Right.Const != 1000 {
		t.Errorf("const = %g", cmp.Right.Const)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT MEDIAN(latency) FROM links",
		"SELECT SUM(latency FROM links",
		"SELECT SUM(latency) FROM nope",
		"SELECT SUM(nope) FROM links",
		"SELECT SUM(other.latency) FROM links",
		"SELECT SUM(latency) WITHIN -5 FROM links",
		"SELECT SUM(latency) WITHIN x FROM links",
		"SELECT SUM(latency) FROM links WHERE",
		"SELECT SUM(latency) FROM links WHERE latency >",
		"SELECT SUM(latency) FROM links WHERE nope > 5",
		"SELECT SUM(latency) FROM links WHERE other.latency > 5",
		"SELECT SUM(latency) FROM links WHERE latency > 5 garbage",
		"SELECT SUM(latency) FROM links WHERE (latency > 5",
		"SELECT SUM(latency) FROM links WHERE latency ! 5",
		"SELECT SUM(latency) FROM links WHERE latency > 5 AND",
		"SELECT SUM(latency) FROM links WHERE AND > 5",
		"SELECT SUM(latency) FROM links WHERE latency @ 5",
	}
	for _, src := range bad {
		if _, err := Parse(src, cat()); err == nil {
			t.Errorf("Parse(%q) succeeded", src)
		}
	}
}

// TestParseEndToEndQ6 parses the paper's Q6 and executes it against the
// Figure 2 fixture, checking the Appendix F result.
func TestParseEndToEndQ6(t *testing.T) {
	q := mustParse(t, "SELECT AVG(latency) WITHIN 2 FROM links WHERE traffic > 100")
	p := query.NewProcessor(refresh.Options{Solver: refresh.SolverExactDP})
	p.Register("links", workload.Figure2Table(), workload.MapOracle(workload.Figure2Master()))
	res, err := p.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Answer.Equal(interval.New(8, 9)) {
		t.Errorf("Q6 through parser = %v, want [8, 9]", res.Answer)
	}
}

// TestParsedPredicateMatchesHandBuilt: parsing Figure 7's predicates
// yields the same classifications as hand-built trees.
func TestParsedPredicateMatchesHandBuilt(t *testing.T) {
	tab := workload.Figure2Table()
	q := mustParse(t, "SELECT SUM(traffic) FROM links WHERE (bandwidth > 50) AND (latency < 10)")
	wantClasses := map[int64]predicate.Class{
		1: predicate.Plus, 2: predicate.Maybe, 3: predicate.Minus,
		4: predicate.Maybe, 5: predicate.Maybe, 6: predicate.Maybe,
	}
	for key, want := range wantClasses {
		got := predicate.ClassifyTuple(q.Where, tab.At(tab.ByKey(key)))
		if got != want {
			t.Errorf("tuple %d: %v, want %v", key, got, want)
		}
	}
}

func TestLexerTokens(t *testing.T) {
	toks, err := lex("a<=b, (c) 3.5 <> x.y")
	if err != nil {
		t.Fatal(err)
	}
	kinds := []tokenKind{tokIdent, tokOp, tokIdent, tokComma, tokLParen,
		tokIdent, tokRParen, tokNumber, tokOp, tokIdent, tokDot, tokIdent, tokEOF}
	if len(toks) != len(kinds) {
		t.Fatalf("token count = %d, want %d", len(toks), len(kinds))
	}
	for i, k := range kinds {
		if toks[i].kind != k {
			t.Errorf("token %d = %v (%q), want kind %v", i, toks[i].kind, toks[i].text, k)
		}
	}
}

func TestLexerErrors(t *testing.T) {
	for _, src := range []string{"@", "1.e", "1e", "!x"} {
		if _, err := lex(src); err == nil {
			t.Errorf("lex(%q) succeeded", src)
		}
	}
}
