package sql_test

import (
	"fmt"

	"trapp/internal/sql"
	"trapp/internal/workload"
)

// Parsing the paper's query form, including the §8.1 extensions.
func ExampleParse() {
	cat := sql.MapCatalog{"links": workload.LinkSchema()}
	q, err := sql.Parse(
		"SELECT AVG(latency) WITHIN 2 FROM links WHERE traffic > 100", cat)
	if err != nil {
		panic(err)
	}
	fmt.Println(q)

	q, _ = sql.Parse("SELECT SUM(traffic) WITHIN 5% FROM links GROUP BY from", cat)
	fmt.Println(q)
	// Output:
	// SELECT AVG(links.latency) WITHIN 2 FROM links WHERE traffic > 100
	// SELECT SUM(links.traffic) WITHIN 5% FROM links GROUP BY from
}
