package sql

import (
	"strings"
	"testing"
)

func TestParseStatementExplainAnalyze(t *testing.T) {
	st, err := ParseStatement("EXPLAIN ANALYZE SELECT SUM(latency) WITHIN 10 FROM links", cat())
	if err != nil {
		t.Fatal(err)
	}
	if !st.Explain {
		t.Error("Explain not set")
	}
	if len(st.Queries) != 1 || st.Queries[0].Within != 10 {
		t.Errorf("queries = %+v", st.Queries)
	}
}

func TestParseStatementExplainCaseInsensitive(t *testing.T) {
	st, err := ParseStatement("explain analyze select min(bandwidth) from links", cat())
	if err != nil {
		t.Fatal(err)
	}
	if !st.Explain || len(st.Queries) != 1 {
		t.Errorf("statement = %+v", st)
	}
}

func TestParseStatementPlainSelect(t *testing.T) {
	st, err := ParseStatement("SELECT MAX(traffic) FROM links", cat())
	if err != nil {
		t.Fatal(err)
	}
	if st.Explain {
		t.Error("Explain set on a plain SELECT")
	}
}

func TestParseStatementExplainMultiAgg(t *testing.T) {
	st, err := ParseStatement("EXPLAIN ANALYZE SELECT MIN(latency), MAX(latency) FROM links", cat())
	if err != nil {
		t.Fatal(err)
	}
	if !st.Explain || len(st.Queries) != 2 {
		t.Errorf("statement = %+v", st)
	}
}

func TestExplainRequiresAnalyze(t *testing.T) {
	if _, err := ParseStatement("EXPLAIN SELECT SUM(latency) FROM links", cat()); err == nil {
		t.Error("EXPLAIN without ANALYZE accepted")
	}
}

func TestParseAllRejectsExplain(t *testing.T) {
	// The non-statement entry points keep their old grammar: EXPLAIN is
	// only a statement-level prefix, so Parse/ParseAll reject it.
	_, err := ParseAll("EXPLAIN ANALYZE SELECT SUM(latency) FROM links", cat())
	if err == nil {
		t.Fatal("ParseAll accepted EXPLAIN ANALYZE")
	}
	if !strings.Contains(err.Error(), "SELECT") {
		t.Errorf("error %q should complain about expecting SELECT", err)
	}
}
