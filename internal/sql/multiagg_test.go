package sql

import (
	"errors"
	"math"
	"strings"
	"testing"

	"trapp/internal/aggregate"
	"trapp/internal/relation"
)

func multiCatalog() Catalog {
	return MapCatalog{"t": relation.NewSchema(
		relation.Column{Name: "grp", Kind: relation.Exact},
		relation.Column{Name: "v", Kind: relation.Bounded},
		relation.Column{Name: "w", Kind: relation.Bounded},
	)}
}

func TestParseAllMultiAggregate(t *testing.T) {
	qs, err := ParseAll("SELECT MIN(v), MAX(v), SUM(w) WITHIN 5 FROM t WHERE w > 3", multiCatalog())
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 3 {
		t.Fatalf("got %d queries, want 3", len(qs))
	}
	wantAggs := []aggregate.Func{aggregate.Min, aggregate.Max, aggregate.Sum}
	wantCols := []string{"v", "v", "w"}
	for i, q := range qs {
		if q.Agg != wantAggs[i] || q.Column != wantCols[i] {
			t.Errorf("query %d = %s(%s), want %s(%s)", i, q.Agg, q.Column, wantAggs[i], wantCols[i])
		}
		if q.Within != 5 || q.Table != "t" {
			t.Errorf("query %d: Within %g Table %q", i, q.Within, q.Table)
		}
		if q.Where == nil {
			t.Errorf("query %d lost the shared predicate", i)
		}
	}
}

func TestParseAllSingleAggregate(t *testing.T) {
	qs, err := ParseAll("SELECT AVG(v) FROM t", multiCatalog())
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 1 || qs[0].Agg != aggregate.Avg || !math.IsInf(qs[0].Within, 1) {
		t.Fatalf("got %+v", qs)
	}
}

func TestParseRejectsMultiAggregate(t *testing.T) {
	_, err := Parse("SELECT MIN(v), MAX(v) WITHIN 5 FROM t", multiCatalog())
	if err == nil {
		t.Fatal("Parse accepted a multi-aggregate statement")
	}
	if !strings.Contains(err.Error(), "2 aggregates") {
		t.Errorf("unhelpful error: %v", err)
	}
}

func TestParseAllRelativeConstraintShared(t *testing.T) {
	qs, err := ParseAll("SELECT MIN(v), MAX(w) WITHIN 5% FROM t", multiCatalog())
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		if q.RelativeWithin != 0.05 {
			t.Errorf("query %d: RelativeWithin = %g, want 0.05", i, q.RelativeWithin)
		}
	}
}

func TestParseErrorPositions(t *testing.T) {
	cases := []struct {
		src     string
		wantPos int
		wantMsg string
	}{
		// pos:     0123456789...
		{"SELECT MIN(v) FROM missing", 19, "unknown table"},
		{"SELECT MIN(nope) FROM t", 11, "unknown column"},
		{"SELECT MIN(v) FROM t WHERE bogus > 1", 27, "unknown column"},
		{"SELECT MIN(v) FROM t WHERE v >", 30, "column or constant"},
		{"SELECT MIN(v), MAX(nope) WITHIN 2 FROM t", 19, "unknown column"},
		{"SELECT MIN(v) WITHIN -3 FROM t", 21, "precision constraint"},
		{"SELECT MIN(v) FROM t GROUP BY v", 30, "must be exact"},
		{"SELECT MIN(v) FROM t trailing", 21, "trailing input"},
		{"SELECT MIN(v) FROM t WHERE v ! 3", 29, "unexpected '!'"},
	}
	for _, tc := range cases {
		_, err := ParseAll(tc.src, multiCatalog())
		if err == nil {
			t.Errorf("%q: no error", tc.src)
			continue
		}
		var perr *Error
		if !errors.As(err, &perr) {
			t.Errorf("%q: error %v is not a positioned *sql.Error", tc.src, err)
			continue
		}
		if perr.Pos != tc.wantPos {
			t.Errorf("%q: position %d, want %d (%v)", tc.src, perr.Pos, tc.wantPos, err)
		}
		if !strings.Contains(perr.Msg, tc.wantMsg) {
			t.Errorf("%q: message %q does not mention %q", tc.src, perr.Msg, tc.wantMsg)
		}
	}
}
