package sql

import (
	"testing"

	"trapp/internal/aggregate"
	"trapp/internal/query"
	"trapp/internal/refresh"
	"trapp/internal/workload"
)

func TestParseRelativeWithin(t *testing.T) {
	q := mustParse(t, "SELECT SUM(traffic) WITHIN 5% FROM links")
	if q.RelativeWithin != 0.05 {
		t.Errorf("RelativeWithin = %g, want 0.05", q.RelativeWithin)
	}
	// Absolute Within stays at its +Inf default.
	if q.Within != q.Within || q.Within < 1e300 {
		t.Errorf("Within = %g, want +Inf", q.Within)
	}
}

func TestParseGroupBy(t *testing.T) {
	q := mustParse(t, "SELECT SUM(latency) WITHIN 1 FROM links GROUP BY from")
	if len(q.GroupBy) != 1 || q.GroupBy[0] != "from" {
		t.Errorf("GroupBy = %v", q.GroupBy)
	}
	q = mustParse(t, "SELECT SUM(latency) FROM links GROUP BY from, to")
	if len(q.GroupBy) != 2 || q.GroupBy[1] != "to" {
		t.Errorf("GroupBy = %v", q.GroupBy)
	}
	q = mustParse(t, "SELECT COUNT(latency) FROM links WHERE latency > 5 GROUP BY from")
	if q.Where == nil || len(q.GroupBy) != 1 {
		t.Errorf("combined WHERE+GROUP BY: %+v", q)
	}
}

func TestParseGroupByErrors(t *testing.T) {
	bad := []string{
		"SELECT SUM(latency) FROM links GROUP from",
		"SELECT SUM(latency) FROM links GROUP BY",
		"SELECT SUM(latency) FROM links GROUP BY nope",
		"SELECT SUM(latency) FROM links GROUP BY latency", // bounded column
		"SELECT SUM(latency) FROM links GROUP BY from,",
	}
	for _, src := range bad {
		if _, err := Parse(src, cat()); err == nil {
			t.Errorf("Parse(%q) succeeded", src)
		}
	}
}

func TestParseRelativeEndToEnd(t *testing.T) {
	q := mustParse(t, "SELECT SUM(traffic) WITHIN 2% FROM links")
	p := query.NewProcessor(refresh.Options{Solver: refresh.SolverExactDP})
	p.Register("links", workload.Figure2Table(), workload.MapOracle(workload.Figure2Master()))
	res, err := p.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Met {
		t.Fatalf("relative constraint not met: %v", res.Answer)
	}
	trueSum := 98.0 + 116 + 105 + 127 + 95 + 103
	if res.Answer.Width() > 2*trueSum*0.02+1e-9 {
		t.Errorf("width %g exceeds relative guarantee", res.Answer.Width())
	}
}

func TestParseGroupByEndToEnd(t *testing.T) {
	q := mustParse(t, "SELECT SUM(latency) WITHIN 0 FROM links GROUP BY from")
	p := query.NewProcessor(refresh.Options{})
	p.Register("links", workload.Figure2Table(), workload.MapOracle(workload.Figure2Master()))
	rows, err := p.ExecuteGroupBy(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("groups = %d", len(rows))
	}
	// Scalar Execute rejects GROUP BY queries.
	if _, err := p.Execute(q); err == nil {
		t.Error("Execute accepted a GROUP BY query")
	}
}

func TestQueryStringWithExtensions(t *testing.T) {
	q := query.NewQuery("links", aggregate.Sum, "latency")
	q.RelativeWithin = 0.05
	q.GroupBy = []string{"from", "to"}
	want := "SELECT SUM(links.latency) WITHIN 5% FROM links GROUP BY from, to"
	if got := q.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}
