package sql

// Native Go fuzz targets for the SQL front door — the service layer
// exposes ParseQuery/ParseQueries to untrusted network input, so the
// parser must never panic and every failure must be a positioned
// *Error. The seed corpus covers every production in the dialect
// (each aggregate, qualified columns, multi-aggregate lists, absolute
// and relative WITHIN, every comparison operator, AND/OR/NOT/parens,
// GROUP BY lists, multi-statement fragments) plus known tripwires
// (exponents, signed numbers, '%', unicode, keywords as identifiers).
//
// Checked invariants, per input:
//
//  1. no panic (the fuzzer's implicit property);
//  2. every error is a *sql.Error with 0 ≤ Pos ≤ len(src);
//  3. accepted queries are well-formed: the table resolves in the
//     catalog, columns exist, constraints are non-negative and non-NaN,
//     grouping columns are exact;
//  4. accepted queries round-trip: rendering with Query.String() parses
//     again to the same query (RelativeWithin compared approximately —
//     it is stored divided by 100 and re-rendered multiplied back).
//
// CI runs both targets under -fuzz for a short smoke window on every
// push; `go test` alone replays the seeds and testdata/fuzz corpus.

import (
	"errors"
	"math"
	"testing"

	"trapp/internal/query"
	"trapp/internal/relation"
	"trapp/internal/workload"
)

// fuzzCatalog is the fixed schema fuzz inputs parse against: bounded
// measurement columns and exact dimension columns, two tables.
var fuzzCatalog = MapCatalog{
	"t": relation.NewSchema(
		relation.Column{Name: "g", Kind: relation.Exact},
		relation.Column{Name: "h", Kind: relation.Exact},
		relation.Column{Name: "v", Kind: relation.Bounded},
		relation.Column{Name: "w", Kind: relation.Bounded},
	),
	"links": relation.NewSchema(
		relation.Column{Name: "from", Kind: relation.Exact},
		relation.Column{Name: "latency", Kind: relation.Bounded},
	),
}

// The -scale harness generates SQL against multi-tenant tables
// (tenant_0, tenant_1, …) with the shared scale schema; register the
// ones its corpus sample references so those shapes parse instead of
// failing on table resolution.
func init() {
	for t := 0; t < 4; t++ {
		fuzzCatalog[workload.TenantName(t)] = workload.ScaleSchema()
	}
}

// scaleCorpus is the deterministic sample of generated -scale SQL
// shapes (underscored tenant names, tight and relative WITHIN, GROUP BY
// over the exact region column) seeded alongside the hand-written
// corpus.
var scaleCorpus = workload.ScaleCorpus()

// corpus seeds cover every production of the grammar plus error shapes.
var corpus = []string{
	// Every aggregate, bare and qualified.
	"SELECT MIN(v) FROM t",
	"SELECT MAX(v) FROM t",
	"SELECT SUM(t.v) FROM t",
	"SELECT AVG(w) FROM t",
	"SELECT COUNT(v) FROM t",
	// Precision constraints: absolute, relative, fractional, exponent.
	"SELECT SUM(v) WITHIN 5 FROM t",
	"SELECT SUM(v) WITHIN 0.25 FROM t",
	"SELECT SUM(v) WITHIN 2.5e3 FROM t",
	"SELECT AVG(v) WITHIN 5% FROM t",
	"SELECT AVG(v) WITHIN 0 FROM t",
	// Multi-aggregate select lists.
	"SELECT MIN(v), MAX(v) WITHIN 5 FROM t",
	"SELECT MIN(v), MAX(w), AVG(v), SUM(w), COUNT(v) FROM t",
	// Predicates: every operator, both operand orders, logic, parens.
	"SELECT SUM(v) FROM t WHERE v < 10",
	"SELECT SUM(v) FROM t WHERE v <= 10",
	"SELECT SUM(v) FROM t WHERE v > 10",
	"SELECT SUM(v) FROM t WHERE v >= 10",
	"SELECT SUM(v) FROM t WHERE v = 10",
	"SELECT SUM(v) FROM t WHERE v <> 10",
	"SELECT SUM(v) FROM t WHERE v != 10",
	"SELECT SUM(v) FROM t WHERE 10 < v",
	"SELECT SUM(v) FROM t WHERE v < w",
	"SELECT SUM(v) FROM t WHERE v < -5",
	"SELECT SUM(v) FROM t WHERE v > 1 AND w < 2",
	"SELECT SUM(v) FROM t WHERE v > 1 OR NOT (w < 2 AND g = 1)",
	"SELECT SUM(v) FROM t WHERE ((v > 1))",
	// GROUP BY, single and multi.
	"SELECT AVG(v) FROM t GROUP BY g",
	"SELECT AVG(v) WITHIN 2 FROM t WHERE w > 0 GROUP BY g, h",
	// Case-insensitive keywords; keyword-named exact column.
	"select sum(v) within 5 from t where v < 10 group by g",
	"SELECT MAX(latency) FROM links WHERE from = 3",
	// Error shapes: each should fail with a positioned error.
	"",
	"SELECT",
	"SELECT FROG(v) FROM t",
	"SELECT SUM(v) FROM nope",
	"SELECT SUM(nope) FROM t",
	"SELECT SUM(v) WITHIN -1 FROM t",
	"SELECT SUM(v) WITHIN x FROM t",
	"SELECT SUM(v) FROM t WHERE",
	"SELECT SUM(v) FROM t WHERE v <",
	"SELECT SUM(v) FROM t GROUP BY v", // bounded grouping column
	"SELECT SUM(v) FROM t trailing",
	"SELECT SUM(v), FROM t",
	"SELECT SUM(v) FROM t; SELECT MIN(v) FROM t", // ';' is the server's job
	"SELECT SUM(v) WITHIN 1e999 FROM t",          // overflowing constraint
	"SELECT SUM(v) WITHIN 5%% FROM t",
	"SELECT SUM(v.) FROM t",
	"SELECT SUM(links.v) FROM t", // qualifier disagrees with FROM
	"SELECT SUM(v) FROM t WHERE v ≤ 10",
	"SELECT SÜM(v) FROM t",
	"SELECT SUM(v) FROM t WHERE v < 1.2.3",
	"SELECT SUM(v) FROM t WHERE v < 10e",
	"(SELECT SUM(v) FROM t)",
}

// checkParseInvariants validates one ParseAll outcome against the
// properties above, returning the parsed queries for extra checks.
func checkParseInvariants(t *testing.T, src string, qs []query.Query, err error) {
	t.Helper()
	if err != nil {
		var se *Error
		if !errors.As(err, &se) {
			t.Fatalf("error is %T, not *sql.Error: %v (input %q)", err, err, src)
		}
		if se.Pos < 0 || se.Pos > len(src) {
			t.Fatalf("error position %d outside input of length %d (input %q)", se.Pos, len(src), src)
		}
		if se.Msg == "" {
			t.Fatalf("empty error message (input %q)", src)
		}
		return
	}
	if len(qs) == 0 {
		t.Fatalf("no error and no queries (input %q)", src)
	}
	for _, q := range qs {
		schema, ok := fuzzCatalog.SchemaOf(q.Table)
		if !ok {
			t.Fatalf("accepted unknown table %q (input %q)", q.Table, src)
		}
		if _, ok := schema.Lookup(q.Column); !ok {
			t.Fatalf("accepted unknown column %q.%q (input %q)", q.Table, q.Column, src)
		}
		if q.Within < 0 || math.IsNaN(q.Within) {
			t.Fatalf("accepted invalid constraint %g (input %q)", q.Within, src)
		}
		if q.RelativeWithin < 0 || math.IsNaN(q.RelativeWithin) || math.IsInf(q.RelativeWithin, 0) {
			t.Fatalf("accepted invalid relative constraint %g (input %q)", q.RelativeWithin, src)
		}
		for _, g := range q.GroupBy {
			ci, ok := schema.Lookup(g)
			if !ok || schema.Column(ci).Kind != relation.Exact {
				t.Fatalf("accepted bad grouping column %q (input %q)", g, src)
			}
		}
		checkRoundTrip(t, src, q)
	}
}

// checkRoundTrip renders an accepted query back to SQL and re-parses
// it; the grammar and Query.String are mutually inverse up to the
// relative-constraint scaling.
func checkRoundTrip(t *testing.T, src string, q query.Query) {
	t.Helper()
	rendered := q.String()
	back, err := Parse(rendered, fuzzCatalog)
	if err != nil {
		t.Fatalf("accepted query %q renders as %q which does not parse: %v", src, rendered, err)
	}
	same := back.Table == q.Table && back.Agg == q.Agg && back.Column == q.Column &&
		(back.Within == q.Within || (math.IsInf(back.Within, 1) && math.IsInf(q.Within, 1))) &&
		len(back.GroupBy) == len(q.GroupBy)
	for i := range q.GroupBy {
		same = same && back.GroupBy[i] == q.GroupBy[i]
	}
	// RelativeWithin is stored ÷100 and rendered ×100; compare loosely.
	if d := math.Abs(back.RelativeWithin - q.RelativeWithin); d > 1e-12*(1+math.Abs(q.RelativeWithin)) {
		same = false
	}
	wantWhere, gotWhere := "TRUE", "TRUE"
	if q.Where != nil {
		wantWhere = q.Where.String()
	}
	if back.Where != nil {
		gotWhere = back.Where.String()
	}
	if !same || wantWhere != gotWhere {
		t.Fatalf("round trip changed the query:\n  input    %q\n  parsed   %v\n  rendered %q\n  reparsed %v", src, q, rendered, back)
	}
}

func FuzzParseAll(f *testing.F) {
	for _, s := range corpus {
		f.Add(s)
	}
	for _, s := range scaleCorpus {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		qs, err := ParseAll(src, fuzzCatalog)
		checkParseInvariants(t, src, qs, err)
	})
}

func FuzzParseQuery(f *testing.F) {
	for _, s := range corpus {
		f.Add(s)
	}
	for _, s := range scaleCorpus {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src, fuzzCatalog)
		if err != nil {
			checkParseInvariants(t, src, nil, err)
			return
		}
		checkParseInvariants(t, src, []query.Query{q}, nil)
	})
}

// TestCorpusSeeds replays every seed through both entry points in a
// plain `go test` run, so the corpus invariants hold even where -fuzz
// is unavailable.
func TestCorpusSeeds(t *testing.T) {
	for _, src := range append(append([]string{}, corpus...), scaleCorpus...) {
		qs, err := ParseAll(src, fuzzCatalog)
		checkParseInvariants(t, src, qs, err)
		q, err := Parse(src, fuzzCatalog)
		if err == nil {
			checkParseInvariants(t, src, []query.Query{q}, nil)
		}
	}
}
