package sql

import (
	"sync"
	"sync/atomic"
)

// ParseCache memoizes successful ParseStatement compilations by exact
// statement text. On a serving tier the statement stream is highly
// repetitive (few shapes, many callers), and at wire rates the parse —
// lexing, catalog resolution, predicate construction — costs more than
// the cache-answered execution it feeds; memoizing it removes that cost
// and, because repeated text yields the *same* compiled Statement value,
// lets downstream shape-keyed caches key on cheap identity.
//
// A cache is bound to one catalog: compilation resolves column names
// against it, so callers must use one ParseCache per catalog instance
// (the server owns one per System). Only successful parses are cached —
// errors stay cheap to recompute and a statement that fails against a
// growing catalog (an unmounted table) must not fail forever. Cached
// Statements are shared: callers may append-copy Queries but must not
// mutate them in place.
//
// The size is bounded; on overflow the map is cleared (rare — it takes
// maxParseEntries distinct statement texts — and self-healing).
type ParseCache struct {
	mu     sync.RWMutex
	m      map[string]Statement
	hits   atomic.Int64
	misses atomic.Int64
}

// maxParseEntries bounds the cache; adversarial unique-text request
// streams degrade to parse-per-request, never to unbounded memory.
const maxParseEntries = 4096

// NewParseCache returns an empty statement cache.
func NewParseCache() *ParseCache {
	return &ParseCache{m: make(map[string]Statement)}
}

// Parse compiles src against cat, serving repeats from the cache.
func (c *ParseCache) Parse(src string, cat Catalog) (Statement, error) {
	c.mu.RLock()
	st, ok := c.m[src]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		return st, nil
	}
	c.misses.Add(1)
	st, err := ParseStatement(src, cat)
	if err != nil {
		return st, err
	}
	c.mu.Lock()
	if len(c.m) >= maxParseEntries {
		clear(c.m)
	}
	c.m[src] = st
	c.mu.Unlock()
	return st, nil
}

// Stats reports cumulative hits and misses and the current entry count.
func (c *ParseCache) Stats() (hits, misses int64, size int) {
	c.mu.RLock()
	size = len(c.m)
	c.mu.RUnlock()
	return c.hits.Load(), c.misses.Load(), size
}
