package sql

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

func TestParseCacheHitsAndSharing(t *testing.T) {
	c := NewParseCache()
	const src = "SELECT SUM(latency), MIN(traffic) WITHIN 5 FROM links"

	st1, err := c.Parse(src, cat())
	if err != nil {
		t.Fatal(err)
	}
	st2, err := c.Parse(src, cat())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st1, st2) {
		t.Fatal("cached statement differs from parsed")
	}
	// The cached hit must return the same compiled predicate values, and
	// agree with a fresh uncached parse.
	fresh, err := ParseStatement(src, cat())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st2, fresh) {
		t.Fatal("cached statement differs from uncached parse")
	}
	hits, misses, size := c.Stats()
	if hits != 1 || misses != 1 || size != 1 {
		t.Fatalf("stats hits=%d misses=%d size=%d, want 1/1/1", hits, misses, size)
	}
}

func TestParseCacheErrorsNotCached(t *testing.T) {
	c := NewParseCache()
	for i := 0; i < 3; i++ {
		if _, err := c.Parse("SELECT BOGUS(latency) FROM links", cat()); err == nil {
			t.Fatal("bogus statement parsed")
		}
	}
	hits, misses, size := c.Stats()
	if hits != 0 || size != 0 {
		t.Fatalf("errors were cached: hits=%d size=%d", hits, size)
	}
	if misses != 3 {
		t.Fatalf("misses = %d, want 3", misses)
	}
}

func TestParseCacheOverflowClears(t *testing.T) {
	c := NewParseCache()
	for i := 0; i <= maxParseEntries; i++ {
		src := fmt.Sprintf("SELECT SUM(latency) WITHIN %d FROM links", i+1)
		if _, err := c.Parse(src, cat()); err != nil {
			t.Fatal(err)
		}
	}
	_, _, size := c.Stats()
	if size > maxParseEntries {
		t.Fatalf("cache grew past bound: %d entries", size)
	}
	// Still serves correctly after the clear.
	if _, err := c.Parse("SELECT SUM(latency) WITHIN 1 FROM links", cat()); err != nil {
		t.Fatal(err)
	}
}

func TestParseCacheConcurrent(t *testing.T) {
	c := NewParseCache()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				src := fmt.Sprintf("SELECT SUM(latency) WITHIN %d FROM links", i%10)
				st, err := c.Parse(src, cat())
				if err != nil || len(st.Queries) != 1 {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
