// Package sql provides a small front end for the TRAPP/AG query language
// of paper section 4:
//
//	SELECT AGGREGATE(T.a) [, AGGREGATE(T.b) ...] WITHIN R FROM T WHERE PREDICATE
//
// AGGREGATE is one of COUNT, MIN, MAX, SUM, AVG; WITHIN and WHERE are
// optional (omitting WITHIN means R = +Inf, pure imprecise mode). A
// statement may select several aggregates in one list (ParseAll); they
// share the WITHIN constraint, table and predicate, and compile to a
// batch that ExecuteBatch answers with one shared scan and one deduped
// refresh round. The predicate grammar supports binary comparisons
// between columns and numeric constants combined with AND, OR, NOT, and
// parentheses — the expression class handled by the Possible/Certain
// translation of Appendix D. Keywords are case-insensitive; column and
// table names are case-sensitive identifiers. Every lexer and parser
// error is a positioned *Error.
package sql

import (
	"strings"
	"unicode"
)

// tokenKind classifies lexer tokens.
type tokenKind int8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokLParen
	tokRParen
	tokDot
	tokComma
	tokPercent
	tokOp // < <= > >= = <> !=
)

// token is one lexeme with its position for error messages.
type token struct {
	kind tokenKind
	text string
	pos  int
}

// lexer turns a query string into tokens.
type lexer struct {
	src string
	pos int
}

// lex tokenizes the whole input.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}

// next scans one token.
func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) && unicode.IsSpace(rune(l.src[l.pos])) {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case c == '(':
		l.pos++
		return token{tokLParen, "(", start}, nil
	case c == ')':
		l.pos++
		return token{tokRParen, ")", start}, nil
	case c == '.':
		l.pos++
		return token{tokDot, ".", start}, nil
	case c == ',':
		l.pos++
		return token{tokComma, ",", start}, nil
	case c == '%':
		l.pos++
		return token{tokPercent, "%", start}, nil
	case c == '<':
		l.pos++
		if l.pos < len(l.src) && (l.src[l.pos] == '=' || l.src[l.pos] == '>') {
			l.pos++
		}
		return token{tokOp, l.src[start:l.pos], start}, nil
	case c == '>':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
		}
		return token{tokOp, l.src[start:l.pos], start}, nil
	case c == '=':
		l.pos++
		return token{tokOp, "=", start}, nil
	case c == '!':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
			return token{tokOp, "!=", start}, nil
		}
		return token{}, errAt(start, "unexpected '!'")
	case c == '-' || c == '+' || unicode.IsDigit(rune(c)):
		return l.number()
	case unicode.IsLetter(rune(c)) || c == '_':
		for l.pos < len(l.src) && (unicode.IsLetter(rune(l.src[l.pos])) ||
			unicode.IsDigit(rune(l.src[l.pos])) || l.src[l.pos] == '_') {
			l.pos++
		}
		return token{tokIdent, l.src[start:l.pos], start}, nil
	default:
		return token{}, errAt(start, "unexpected character %q", c)
	}
}

// number scans a (possibly signed, possibly fractional or exponent) number.
func (l *lexer) number() (token, error) {
	start := l.pos
	if l.src[l.pos] == '-' || l.src[l.pos] == '+' {
		l.pos++
	}
	digits := 0
	for l.pos < len(l.src) && unicode.IsDigit(rune(l.src[l.pos])) {
		l.pos++
		digits++
	}
	if l.pos < len(l.src) && l.src[l.pos] == '.' {
		l.pos++
		for l.pos < len(l.src) && unicode.IsDigit(rune(l.src[l.pos])) {
			l.pos++
			digits++
		}
	}
	if digits == 0 {
		return token{}, errAt(start, "malformed number")
	}
	if l.pos < len(l.src) && (l.src[l.pos] == 'e' || l.src[l.pos] == 'E') {
		l.pos++
		if l.pos < len(l.src) && (l.src[l.pos] == '-' || l.src[l.pos] == '+') {
			l.pos++
		}
		ed := 0
		for l.pos < len(l.src) && unicode.IsDigit(rune(l.src[l.pos])) {
			l.pos++
			ed++
		}
		if ed == 0 {
			return token{}, errAt(start, "malformed exponent")
		}
	}
	return token{tokNumber, l.src[start:l.pos], start}, nil
}

// isKeyword reports whether the token is the given keyword,
// case-insensitively.
func (t token) isKeyword(kw string) bool {
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}
