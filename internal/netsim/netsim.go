// Package netsim provides the simulated wide-area substrate underneath the
// TRAPP architecture: a discrete logical clock shared by sources and
// caches, and a message-accounting network that records refresh traffic and
// cost. The paper's experiments measure refresh cost rather than wire
// time, so the network model is deliberately simple — per-message cost and
// counters — while still separating value-initiated from query-initiated
// traffic so the Appendix A adaptive-bound experiments can observe both.
package netsim

import (
	"context"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Clock is a shared discrete logical clock. Bound functions are evaluated
// against it, and sources check registered bounds when it advances. It is
// safe for concurrent use.
type Clock struct {
	now atomic.Int64

	lmu       sync.Mutex
	listeners []func(now int64)
}

// NewClock returns a clock at time 0.
func NewClock() *Clock { return &Clock{} }

// Now returns the current tick.
func (c *Clock) Now() int64 { return c.now.Load() }

// OnAdvance registers fn to be called after every Advance with the new
// time. Listeners run synchronously on the advancing goroutine, outside
// the clock's own lock, so they may read the clock but must return
// quickly (the continuous-query engine uses one to mark tables
// time-dirty and wake its maintainer).
func (c *Clock) OnAdvance(fn func(now int64)) {
	c.lmu.Lock()
	c.listeners = append(c.listeners, fn)
	c.lmu.Unlock()
}

// Advance moves the clock forward by d ticks (d ≤ 0 is ignored) and
// returns the new time.
func (c *Clock) Advance(d int64) int64 {
	if d <= 0 {
		return c.now.Load()
	}
	now := c.now.Add(d)
	c.lmu.Lock()
	listeners := c.listeners
	c.lmu.Unlock()
	for _, fn := range listeners {
		fn(now)
	}
	return now
}

// MsgKind classifies simulated messages.
type MsgKind int8

const (
	// ValueRefresh is a value-initiated refresh: the master value escaped
	// a registered cached bound and the source pushed a new bound.
	ValueRefresh MsgKind = iota
	// QueryRefresh is a query-initiated refresh: a cache paid to pull the
	// exact master value to satisfy a precision constraint.
	QueryRefresh
	// Registration is a cache subscribing to an object.
	Registration
	// Propagation is an insert/delete propagated to caches.
	Propagation
)

// String names the message kind.
func (k MsgKind) String() string {
	switch k {
	case ValueRefresh:
		return "value-refresh"
	case QueryRefresh:
		return "query-refresh"
	case Registration:
		return "registration"
	default:
		return "propagation"
	}
}

// Stats aggregates network traffic counters.
type Stats struct {
	// Messages counts all messages by kind.
	Messages map[MsgKind]int64
	// QueryRefreshCost is the total refresh cost Σ C_i paid by queries.
	QueryRefreshCost float64
	// ValueRefreshCost is the total cost attributed to value-initiated
	// refreshes (the source pays to push).
	ValueRefreshCost float64
	// PerSource breaks the same counters down by originating source id,
	// for traffic labeled with SendFrom (unlabeled Send/SendN traffic
	// appears only in the totals above). The trappserver /metrics
	// endpoint publishes this map.
	PerSource map[string]SourceStats
}

// SourceStats is one source's share of the traffic counters.
type SourceStats struct {
	// Messages counts the source's messages by kind.
	Messages map[MsgKind]int64
	// QueryRefreshCost and ValueRefreshCost split the source's cost by
	// who initiated the traffic.
	QueryRefreshCost float64
	ValueRefreshCost float64
}

// Total returns the total message count.
func (s Stats) Total() int64 {
	var t int64
	for _, n := range s.Messages {
		t += n
	}
	return t
}

// numMsgKinds sizes the counter array; derived from the last MsgKind so
// adding a kind automatically extends the accounting.
const numMsgKinds = int(Propagation) + 1

// Network records simulated message traffic. It is safe for concurrent
// use: counters are per-kind atomics so that many goroutines refreshing
// in parallel do not serialize on a shared lock.
type Network struct {
	messages  [numMsgKinds]atomic.Int64
	queryCost atomicFloat
	valueCost atomicFloat
	latency   atomic.Int64 // simulated wire time per transmission, ns

	// perSource maps source id → *sourceCounters. Entries are created
	// once per source on its first labeled send and then mutated with
	// the same lock-free atomics as the totals, so labeling costs one
	// sync.Map load on the hot path.
	perSource sync.Map
}

// sourceCounters is the per-source mirror of the global counters.
type sourceCounters struct {
	messages  [numMsgKinds]atomic.Int64
	queryCost atomicFloat
	valueCost atomicFloat
}

// atomicFloat is a float64 accumulator built on CAS over the bit
// pattern; Add is lock-free and Load is a plain atomic read.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) Load() float64 { return math.Float64frombits(f.bits.Load()) }

func (f *atomicFloat) Store(v float64) { f.bits.Store(math.Float64bits(v)) }

// NewNetwork returns an empty traffic recorder.
func NewNetwork() *Network { return &Network{} }

// Send records one message of the given kind and cost.
func (n *Network) Send(kind MsgKind, cost float64) { n.SendN(kind, 1, cost) }

// SendN records count messages of the given kind with the given total
// cost in one accounting step; batched per-source refresh replies use it
// to charge a whole batch without count round trips through the counters.
func (n *Network) SendN(kind MsgKind, count int64, totalCost float64) {
	if count <= 0 || kind < 0 || int(kind) >= numMsgKinds {
		return
	}
	n.messages[kind].Add(count)
	switch kind {
	case QueryRefresh:
		n.queryCost.Add(totalCost)
	case ValueRefresh:
		n.valueCost.Add(totalCost)
	}
}

// SendFrom is SendN with the originating source labeled: the traffic is
// recorded in the global totals and in the per-source breakdown
// published by Stats.PerSource. Sources label their own refresh
// traffic; unlabeled components keep using Send/SendN.
func (n *Network) SendFrom(id string, kind MsgKind, count int64, totalCost float64) {
	if count <= 0 || kind < 0 || int(kind) >= numMsgKinds {
		return
	}
	n.SendN(kind, count, totalCost)
	v, ok := n.perSource.Load(id)
	if !ok {
		v, _ = n.perSource.LoadOrStore(id, &sourceCounters{})
	}
	sc := v.(*sourceCounters)
	sc.messages[kind].Add(count)
	switch kind {
	case QueryRefresh:
		sc.queryCost.Add(totalCost)
	case ValueRefresh:
		sc.valueCost.Add(totalCost)
	}
}

// SetLatency installs a simulated wire time per transmission. The
// default (zero) keeps every message instantaneous, preserving the
// paper's cost-only network model; a positive latency makes Transmit
// block for that long — interruptibly — so request deadlines and
// cancellation have something real to race against in simulations and
// tests.
func (n *Network) SetLatency(d time.Duration) { n.latency.Store(int64(d)) }

// Latency returns the configured simulated wire time.
func (n *Network) Latency() time.Duration { return time.Duration(n.latency.Load()) }

// Wait blocks for the simulated wire time, or until ctx is canceled or
// its deadline expires, in which case the context error is returned. A
// transmission cut short this way must not be charged: callers wait
// first with no locks held and record the traffic (SendN) only after a
// successful wait, so request deadlines and cancellation have something
// real to race against without ever corrupting the accounting.
func (n *Network) Wait(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if d := n.Latency(); d > 0 {
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
		}
	}
	return nil
}

// Stats returns a snapshot of the counters. Counters are read
// individually, so a snapshot taken while traffic is in flight may tear
// across kinds but each counter is itself consistent.
func (n *Network) Stats() Stats {
	out := Stats{
		Messages:         make(map[MsgKind]int64, numMsgKinds),
		QueryRefreshCost: n.queryCost.Load(),
		ValueRefreshCost: n.valueCost.Load(),
	}
	for k := MsgKind(0); int(k) < numMsgKinds; k++ {
		if v := n.messages[k].Load(); v != 0 {
			out.Messages[k] = v
		}
	}
	n.perSource.Range(func(id, v any) bool {
		sc := v.(*sourceCounters)
		ss := SourceStats{
			Messages:         make(map[MsgKind]int64, numMsgKinds),
			QueryRefreshCost: sc.queryCost.Load(),
			ValueRefreshCost: sc.valueCost.Load(),
		}
		for k := MsgKind(0); int(k) < numMsgKinds; k++ {
			if c := sc.messages[k].Load(); c != 0 {
				ss.Messages[k] = c
			}
		}
		if out.PerSource == nil {
			out.PerSource = make(map[string]SourceStats)
		}
		out.PerSource[id.(string)] = ss
		return true
	})
	return out
}

// Reset zeroes all counters, including the per-source breakdown. Like
// Stats, it is not atomic with respect to in-flight traffic: a SendFrom
// racing Reset may land its count in the totals but not the per-source
// map (or vice versa). Callers that need the per-source breakdown to
// decompose the totals exactly should quiesce senders first — the
// benchmarks reset only between phases.
func (n *Network) Reset() {
	for k := range n.messages {
		n.messages[k].Store(0)
	}
	n.queryCost.Store(0)
	n.valueCost.Store(0)
	n.perSource.Range(func(id, _ any) bool {
		n.perSource.Delete(id)
		return true
	})
}
