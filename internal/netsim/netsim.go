// Package netsim provides the simulated wide-area substrate underneath the
// TRAPP architecture: a discrete logical clock shared by sources and
// caches, and a message-accounting network that records refresh traffic and
// cost. The paper's experiments measure refresh cost rather than wire
// time, so the network model is deliberately simple — per-message cost and
// counters — while still separating value-initiated from query-initiated
// traffic so the Appendix A adaptive-bound experiments can observe both.
package netsim

import (
	"sync"
	"sync/atomic"
)

// Clock is a shared discrete logical clock. Bound functions are evaluated
// against it, and sources check registered bounds when it advances. It is
// safe for concurrent use.
type Clock struct {
	now atomic.Int64
}

// NewClock returns a clock at time 0.
func NewClock() *Clock { return &Clock{} }

// Now returns the current tick.
func (c *Clock) Now() int64 { return c.now.Load() }

// Advance moves the clock forward by d ticks (d ≤ 0 is ignored) and
// returns the new time.
func (c *Clock) Advance(d int64) int64 {
	if d <= 0 {
		return c.now.Load()
	}
	return c.now.Add(d)
}

// MsgKind classifies simulated messages.
type MsgKind int8

const (
	// ValueRefresh is a value-initiated refresh: the master value escaped
	// a registered cached bound and the source pushed a new bound.
	ValueRefresh MsgKind = iota
	// QueryRefresh is a query-initiated refresh: a cache paid to pull the
	// exact master value to satisfy a precision constraint.
	QueryRefresh
	// Registration is a cache subscribing to an object.
	Registration
	// Propagation is an insert/delete propagated to caches.
	Propagation
)

// String names the message kind.
func (k MsgKind) String() string {
	switch k {
	case ValueRefresh:
		return "value-refresh"
	case QueryRefresh:
		return "query-refresh"
	case Registration:
		return "registration"
	default:
		return "propagation"
	}
}

// Stats aggregates network traffic counters.
type Stats struct {
	// Messages counts all messages by kind.
	Messages map[MsgKind]int64
	// QueryRefreshCost is the total refresh cost Σ C_i paid by queries.
	QueryRefreshCost float64
	// ValueRefreshCost is the total cost attributed to value-initiated
	// refreshes (the source pays to push).
	ValueRefreshCost float64
}

// Total returns the total message count.
func (s Stats) Total() int64 {
	var t int64
	for _, n := range s.Messages {
		t += n
	}
	return t
}

// Network records simulated message traffic. It is safe for concurrent
// use.
type Network struct {
	mu    sync.Mutex
	stats Stats
}

// NewNetwork returns an empty traffic recorder.
func NewNetwork() *Network {
	return &Network{stats: Stats{Messages: make(map[MsgKind]int64)}}
}

// Send records one message of the given kind and cost.
func (n *Network) Send(kind MsgKind, cost float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.stats.Messages[kind]++
	switch kind {
	case QueryRefresh:
		n.stats.QueryRefreshCost += cost
	case ValueRefresh:
		n.stats.ValueRefreshCost += cost
	}
}

// Stats returns a snapshot of the counters.
func (n *Network) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := Stats{
		Messages:         make(map[MsgKind]int64, len(n.stats.Messages)),
		QueryRefreshCost: n.stats.QueryRefreshCost,
		ValueRefreshCost: n.stats.ValueRefreshCost,
	}
	for k, v := range n.stats.Messages {
		out.Messages[k] = v
	}
	return out
}

// Reset zeroes all counters.
func (n *Network) Reset() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.stats = Stats{Messages: make(map[MsgKind]int64)}
}
