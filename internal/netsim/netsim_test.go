package netsim

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestClockAdvance(t *testing.T) {
	c := NewClock()
	if c.Now() != 0 {
		t.Fatalf("initial time %d", c.Now())
	}
	if got := c.Advance(5); got != 5 {
		t.Errorf("Advance(5) = %d", got)
	}
	if got := c.Advance(0); got != 5 {
		t.Errorf("Advance(0) = %d", got)
	}
	if got := c.Advance(-3); got != 5 {
		t.Errorf("Advance(-3) = %d", got)
	}
	if c.Now() != 5 {
		t.Errorf("Now = %d", c.Now())
	}
}

func TestClockConcurrentAdvance(t *testing.T) {
	c := NewClock()
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c.Advance(1)
			}
		}()
	}
	wg.Wait()
	if c.Now() != 1000 {
		t.Errorf("concurrent advance total = %d, want 1000", c.Now())
	}
}

func TestNetworkCounters(t *testing.T) {
	n := NewNetwork()
	n.Send(QueryRefresh, 3)
	n.Send(QueryRefresh, 4)
	n.Send(ValueRefresh, 2)
	n.Send(Registration, 0)
	n.Send(Propagation, 0)
	s := n.Stats()
	if s.Messages[QueryRefresh] != 2 || s.Messages[ValueRefresh] != 1 {
		t.Errorf("messages = %v", s.Messages)
	}
	if s.QueryRefreshCost != 7 {
		t.Errorf("query cost = %g", s.QueryRefreshCost)
	}
	if s.ValueRefreshCost != 2 {
		t.Errorf("value cost = %g", s.ValueRefreshCost)
	}
	if s.Total() != 5 {
		t.Errorf("total = %d", s.Total())
	}
}

func TestNetworkReset(t *testing.T) {
	n := NewNetwork()
	n.Send(QueryRefresh, 3)
	n.Reset()
	if n.Stats().Total() != 0 {
		t.Error("reset did not clear counters")
	}
}

func TestNetworkStatsIsolatedSnapshot(t *testing.T) {
	n := NewNetwork()
	n.Send(QueryRefresh, 1)
	s := n.Stats()
	s.Messages[QueryRefresh] = 99
	if n.Stats().Messages[QueryRefresh] != 1 {
		t.Error("snapshot shares map with network")
	}
}

func TestNetworkConcurrentSend(t *testing.T) {
	n := NewNetwork()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				n.Send(QueryRefresh, 1)
			}
		}()
	}
	wg.Wait()
	if got := n.Stats().Messages[QueryRefresh]; got != 400 {
		t.Errorf("concurrent sends = %d", got)
	}
}

func TestNetworkSendN(t *testing.T) {
	n := NewNetwork()
	n.SendN(QueryRefresh, 5, 12.5)
	n.SendN(ValueRefresh, 2, 3)
	n.SendN(QueryRefresh, 0, 100) // no-op
	n.SendN(MsgKind(-1), 3, 100)  // out of range: ignored
	s := n.Stats()
	if s.Messages[QueryRefresh] != 5 || s.Messages[ValueRefresh] != 2 {
		t.Errorf("messages = %v", s.Messages)
	}
	if s.QueryRefreshCost != 12.5 || s.ValueRefreshCost != 3 {
		t.Errorf("costs = %g, %g", s.QueryRefreshCost, s.ValueRefreshCost)
	}
	if s.Total() != 7 {
		t.Errorf("total = %d", s.Total())
	}
}

func TestNetworkConcurrentCostAccumulation(t *testing.T) {
	n := NewNetwork()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				n.Send(ValueRefresh, 0.25)
			}
		}()
	}
	wg.Wait()
	if got := n.Stats().ValueRefreshCost; got != 200 {
		t.Errorf("concurrent cost = %g, want 200", got)
	}
}

func TestMsgKindString(t *testing.T) {
	want := map[MsgKind]string{
		ValueRefresh: "value-refresh", QueryRefresh: "query-refresh",
		Registration: "registration", Propagation: "propagation",
	}
	for k, w := range want {
		if k.String() != w {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
}

func TestNetworkWaitHonorsContext(t *testing.T) {
	n := NewNetwork()
	// Zero latency: Wait returns immediately with a live context.
	if err := n.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	// A canceled context fails the wait even at zero latency.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := n.Wait(ctx); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// With latency, an expiring deadline cuts the wait short and the
	// caller records nothing — counters stay untouched.
	n.SetLatency(time.Hour)
	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel2()
	if err := n.Wait(ctx2); err != context.DeadlineExceeded {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if n.Stats().Total() != 0 {
		t.Error("canceled wait charged the network")
	}
}

func TestPerSourceCounters(t *testing.T) {
	n := NewNetwork()
	n.SendFrom("s0", QueryRefresh, 3, 9)
	n.SendFrom("s1", ValueRefresh, 1, 2)
	n.SendFrom("s0", ValueRefresh, 2, 4)
	n.Send(Propagation, 0) // unlabeled: totals only
	st := n.Stats()
	if st.Messages[QueryRefresh] != 3 || st.Messages[ValueRefresh] != 3 || st.Messages[Propagation] != 1 {
		t.Fatalf("totals = %v", st.Messages)
	}
	s0 := st.PerSource["s0"]
	if s0.Messages[QueryRefresh] != 3 || s0.QueryRefreshCost != 9 || s0.Messages[ValueRefresh] != 2 || s0.ValueRefreshCost != 4 {
		t.Errorf("s0 = %+v", s0)
	}
	if s1 := st.PerSource["s1"]; s1.Messages[ValueRefresh] != 1 || s1.ValueRefreshCost != 2 {
		t.Errorf("s1 = %+v", s1)
	}
	if _, ok := st.PerSource[""]; ok {
		t.Error("unlabeled traffic leaked into PerSource")
	}
	n.Reset()
	if st := n.Stats(); len(st.PerSource) != 0 || st.Total() != 0 {
		t.Errorf("after Reset: %+v", st)
	}
}
