package knapsack_test

import (
	"fmt"

	"trapp/internal/knapsack"
)

// The paper's Q2 worked example (section 5.2): total latency along the
// path with R = 5. Tuples kept in the knapsack are NOT refreshed; the
// optimum keeps tuples 2 and 5 (weights 2 and 3), leaving {1, 6} to
// refresh.
func ExampleBruteForce() {
	// Path tuples 1, 2, 5, 6 with latency bound widths as weights and
	// refresh costs as profits (Figure 2).
	items := []knapsack.Item{
		{Profit: 3, Weight: 2}, // tuple 1
		{Profit: 6, Weight: 2}, // tuple 2
		{Profit: 4, Weight: 3}, // tuple 5
		{Profit: 2, Weight: 2}, // tuple 6
	}
	sol := knapsack.BruteForce(items, 5)
	fmt.Println("kept in knapsack:", sol.Selected)
	fmt.Println("refresh:", sol.Complement(len(items)))
	// Output:
	// kept in knapsack: [1 2]
	// refresh: [0 3]
}

func ExampleApprox() {
	items := []knapsack.Item{
		{Profit: 3, Weight: 2}, {Profit: 6, Weight: 2},
		{Profit: 4, Weight: 3}, {Profit: 2, Weight: 2},
	}
	sol := knapsack.Approx(items, 5, 0.1)
	fmt.Println(sol.Profit >= 0.9*10) // within ε of the optimum 10
	// Output: true
}
