package knapsack

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBruteForceSmall(t *testing.T) {
	items := []Item{{Profit: 60, Weight: 10}, {Profit: 100, Weight: 20}, {Profit: 120, Weight: 30}}
	sol := BruteForce(items, 50)
	if sol.Profit != 220 {
		t.Errorf("profit = %g, want 220", sol.Profit)
	}
	if sol.Weight != 50 {
		t.Errorf("weight = %g, want 50", sol.Weight)
	}
}

func TestBruteForceEmpty(t *testing.T) {
	sol := BruteForce(nil, 10)
	if sol.Profit != 0 || len(sol.Selected) != 0 {
		t.Errorf("empty instance: %+v", sol)
	}
}

func TestBruteForceZeroCapacity(t *testing.T) {
	items := []Item{{Profit: 5, Weight: 1}, {Profit: 7, Weight: 0}}
	sol := BruteForce(items, 0)
	// Only the zero-weight item fits.
	if sol.Profit != 7 || len(sol.Selected) != 1 || sol.Selected[0] != 1 {
		t.Errorf("zero capacity: %+v", sol)
	}
}

func TestExactDPMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + r.Intn(12)
		items := make([]Item, n)
		for i := range items {
			items[i] = Item{
				Profit: float64(1 + r.Intn(10)),
				Weight: r.Float64() * 20,
			}
		}
		cap := r.Float64() * 60
		want := BruteForce(items, cap)
		got, err := ExactDP(items, cap)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got.Weight > cap+1e-9 {
			t.Fatalf("trial %d: DP infeasible: weight %g > cap %g", trial, got.Weight, cap)
		}
		if math.Abs(got.Profit-want.Profit) > 1e-9 {
			t.Fatalf("trial %d: DP profit %g != optimal %g\nitems=%v cap=%g",
				trial, got.Profit, want.Profit, items, cap)
		}
	}
}

func TestExactDPRejectsFractionalProfit(t *testing.T) {
	_, err := ExactDP([]Item{{Profit: 1.5, Weight: 1}}, 10)
	if err != ErrNonIntegerProfit {
		t.Errorf("err = %v, want ErrNonIntegerProfit", err)
	}
}

func TestExactDPSelectionConsistent(t *testing.T) {
	items := []Item{{Profit: 2, Weight: 2}, {Profit: 2, Weight: 3}, {Profit: 4, Weight: 5}, {Profit: 1, Weight: 1}}
	sol, err := ExactDP(items, 6)
	if err != nil {
		t.Fatal(err)
	}
	var p, w float64
	for _, i := range sol.Selected {
		p += items[i].Profit
		w += items[i].Weight
	}
	if p != sol.Profit || w != sol.Weight {
		t.Errorf("selection sums (%g, %g) disagree with solution (%g, %g)", p, w, sol.Profit, sol.Weight)
	}
}

func TestComplement(t *testing.T) {
	s := Solution{Selected: []int{0, 2, 3}}
	got := s.Complement(5)
	want := []int{1, 4}
	if len(got) != len(want) {
		t.Fatalf("complement = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("complement = %v, want %v", got, want)
		}
	}
}

func TestApproxFeasibleAndNearOptimal(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		n := 1 + r.Intn(14)
		items := make([]Item, n)
		for i := range items {
			items[i] = Item{Profit: 1 + r.Float64()*9, Weight: r.Float64() * 20}
		}
		cap := r.Float64() * 60
		opt := BruteForce(items, cap)
		for _, eps := range []float64{0.5, 0.1, 0.05} {
			got := Approx(items, cap, eps)
			if got.Weight > cap+1e-9 {
				t.Fatalf("eps=%g trial %d: infeasible weight %g > %g", eps, trial, got.Weight, cap)
			}
			if got.Profit < (1-eps)*opt.Profit-1e-9 {
				t.Fatalf("eps=%g trial %d: profit %g < (1-eps)*opt %g",
					eps, trial, got.Profit, (1-eps)*opt.Profit)
			}
		}
	}
}

func TestApproxEmptyAndAllTooHeavy(t *testing.T) {
	if sol := Approx(nil, 5, 0.1); sol.Profit != 0 {
		t.Errorf("empty: %+v", sol)
	}
	items := []Item{{Profit: 10, Weight: 100}, {Profit: 20, Weight: 200}}
	if sol := Approx(items, 5, 0.1); len(sol.Selected) != 0 {
		t.Errorf("all too heavy: %+v", sol)
	}
}

func TestApproxPanicsOnBadEps(t *testing.T) {
	for _, eps := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("eps=%g did not panic", eps)
				}
			}()
			Approx([]Item{{Profit: 1, Weight: 1}}, 5, eps)
		}()
	}
}

func TestGreedyUniformOptimalForUniformProfits(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for trial := 0; trial < 100; trial++ {
		n := 1 + r.Intn(12)
		items := make([]Item, n)
		for i := range items {
			items[i] = Item{Profit: 3, Weight: r.Float64() * 10}
		}
		cap := r.Float64() * 40
		want := BruteForce(items, cap)
		got := GreedyUniform(items, cap)
		if got.Weight > cap+1e-9 {
			t.Fatalf("trial %d: infeasible", trial)
		}
		if math.Abs(got.Profit-want.Profit) > 1e-9 {
			t.Fatalf("trial %d: greedy %g != opt %g", trial, got.Profit, want.Profit)
		}
	}
}

func TestGreedyDensityHalfApprox(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 100; trial++ {
		n := 1 + r.Intn(12)
		items := make([]Item, n)
		for i := range items {
			items[i] = Item{Profit: r.Float64() * 10, Weight: r.Float64() * 10}
		}
		cap := r.Float64() * 30
		opt := BruteForce(items, cap)
		got := GreedyDensity(items, cap)
		if got.Weight > cap+1e-9 {
			t.Fatalf("trial %d: infeasible", trial)
		}
		if opt.Profit > 0 && got.Profit < 0.5*opt.Profit-1e-9 {
			t.Fatalf("trial %d: density %g < opt/2 %g", trial, got.Profit, opt.Profit/2)
		}
	}
}

func TestGreedyDensityZeroWeightFirst(t *testing.T) {
	items := []Item{{Profit: 1, Weight: 5}, {Profit: 0.5, Weight: 0}, {Profit: 3, Weight: 0}}
	sol := GreedyDensity(items, 5)
	if sol.Profit != 4.5 {
		t.Errorf("profit = %g, want 4.5 (all items)", sol.Profit)
	}
}

func TestValidateRejectsNegative(t *testing.T) {
	if _, err := ExactDP([]Item{{Profit: -1, Weight: 1}}, 5); err == nil {
		t.Error("negative profit accepted")
	}
	if _, err := ExactDP([]Item{{Profit: 1, Weight: -1}}, 5); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := ExactDP([]Item{{Profit: 1, Weight: 1}}, -5); err == nil {
		t.Error("negative capacity accepted")
	}
}

// TestQuickDPFeasibleAndDominatesGreedy verifies on random instances that
// the exact DP never violates capacity and is at least as good as both
// greedy heuristics.
func TestQuickDPDominatesHeuristics(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(30)
		items := make([]Item, n)
		for i := range items {
			items[i] = Item{Profit: float64(1 + r.Intn(10)), Weight: r.Float64() * 15}
		}
		cap := r.Float64() * 80
		dp, err := ExactDP(items, cap)
		if err != nil {
			return false
		}
		if dp.Weight > cap+1e-9 {
			return false
		}
		if g := GreedyDensity(items, cap); g.Profit > dp.Profit+1e-9 {
			return false
		}
		if a := Approx(items, cap, 0.1); a.Profit > dp.Profit+1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
