// Package knapsack implements 0/1 knapsack solvers used by the TRAPP/AG
// CHOOSE_REFRESH algorithms for SUM and AVG queries (paper section 5.2).
//
// The refresh-selection problem is mapped onto the knapsack as follows: the
// tuples *not* refreshed are "placed in the knapsack"; each tuple has profit
// equal to its refresh cost C_i (profit we avoid paying) and weight equal to
// its bound width H_i − L_i (imprecision it leaves in the answer); the
// knapsack capacity is the precision constraint R. Maximizing the profit in
// the knapsack minimizes the total cost of the tuples that must be
// refreshed.
//
// Because 0/1 knapsack is NP-complete, the package offers several solvers:
//
//   - BruteForce: exhaustive search, exponential, for testing optimality.
//   - ExactDP: dynamic programming over integer profits, pseudo-polynomial
//     O(n · ΣP); exact whenever profits are (small) integers, as with the
//     paper's uniform-random costs in [1, 10].
//   - Approx: an Ibarra–Kim-style fully polynomial approximation scheme
//     (FPTAS) that scales profits down by K = ε·Pmax/n and runs the DP on
//     the scaled instance, guaranteeing profit ≥ (1−ε)·OPT.
//   - GreedyUniform: sorts by weight and fills greedily; optimal when all
//     profits are equal (the uniform-cost special case in section 5.2).
//   - GreedyDensity: profit/weight greedy with a best-single-item fallback,
//     a classical 1/2-approximation used as a fast baseline.
package knapsack

import (
	"errors"
	"math"
	"sort"
)

// Item is a knapsack item. In the TRAPP mapping, Profit is the tuple's
// refresh cost and Weight is its bound width (possibly adjusted for
// predicate uncertainty or AVG coupling).
type Item struct {
	Profit float64
	Weight float64
}

// Solution is a subset of items: the tuples chosen NOT to be refreshed.
type Solution struct {
	// Selected holds indices into the input item slice, ascending.
	Selected []int
	// Profit is the total profit of the selected items.
	Profit float64
	// Weight is the total weight of the selected items.
	Weight float64
}

// Complement returns the indices NOT in the solution, ascending — in the
// TRAPP mapping, the set of tuples to refresh.
func (s Solution) Complement(n int) []int {
	in := make([]bool, n)
	for _, i := range s.Selected {
		in[i] = true
	}
	out := make([]int, 0, n-len(s.Selected))
	for i := 0; i < n; i++ {
		if !in[i] {
			out = append(out, i)
		}
	}
	return out
}

// solutionFromTake builds a Solution from a take mask.
func solutionFromTake(items []Item, take []bool) Solution {
	var s Solution
	for i, t := range take {
		if t {
			s.Selected = append(s.Selected, i)
			s.Profit += items[i].Profit
			s.Weight += items[i].Weight
		}
	}
	return s
}

// validate reports items with negative profit or weight, which have no
// meaning in the TRAPP mapping (costs and widths are nonnegative).
func validate(items []Item, capacity float64) error {
	if capacity < 0 || math.IsNaN(capacity) {
		return errors.New("knapsack: negative or NaN capacity")
	}
	for _, it := range items {
		if it.Profit < 0 || it.Weight < 0 || math.IsNaN(it.Profit) || math.IsNaN(it.Weight) {
			return errors.New("knapsack: negative or NaN item")
		}
	}
	return nil
}

// BruteForce solves the instance exactly by enumerating all 2^n subsets.
// It panics for n > 30. Intended for tests and tiny instances such as the
// paper's 6-tuple worked examples.
func BruteForce(items []Item, capacity float64) Solution {
	if err := validate(items, capacity); err != nil {
		panic(err)
	}
	n := len(items)
	if n > 30 {
		panic("knapsack: BruteForce limited to 30 items")
	}
	best := Solution{Selected: []int{}}
	for mask := 0; mask < 1<<n; mask++ {
		var w, p float64
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				w += items[i].Weight
				p += items[i].Profit
			}
		}
		if w <= capacity && p > best.Profit {
			take := make([]bool, n)
			for i := 0; i < n; i++ {
				take[i] = mask&(1<<i) != 0
			}
			best = solutionFromTake(items, take)
		}
	}
	return best
}

// maxDPStates bounds the profit-dimension of the exact DP table so a
// degenerate instance cannot exhaust memory.
const maxDPStates = 50_000_000

// ErrNonIntegerProfit is returned by ExactDP when some profit is not a
// nonnegative integer (within 1e-9); use Approx instead.
var ErrNonIntegerProfit = errors.New("knapsack: ExactDP requires integer profits")

// ErrTooManyStates is returned by ExactDP when n·ΣP exceeds the internal
// memory budget; use Approx instead.
var ErrTooManyStates = errors.New("knapsack: instance too large for exact DP")

// ExactDP solves the instance exactly with dynamic programming over total
// profit: dp[p] = minimum weight achieving profit exactly p. Running time
// and memory are O(n · ΣP). Profits must be nonnegative integers.
func ExactDP(items []Item, capacity float64) (Solution, error) {
	if err := validate(items, capacity); err != nil {
		return Solution{}, err
	}
	n := len(items)
	profits := make([]int, n)
	total := 0
	for i, it := range items {
		p := math.Round(it.Profit)
		if math.Abs(it.Profit-p) > 1e-9 {
			return Solution{}, ErrNonIntegerProfit
		}
		profits[i] = int(p)
		total += int(p)
	}
	if n > 0 && (total+1) > maxDPStates/n {
		return Solution{}, ErrTooManyStates
	}
	sol := dpByProfit(items, profits, total, capacity)
	return sol, nil
}

// dpByProfit runs the min-weight-per-profit DP and reconstructs the chosen
// set. items[i] has integer profit profits[i]; total is ΣP.
func dpByProfit(items []Item, profits []int, total int, capacity float64) Solution {
	n := len(items)
	const inf = math.MaxFloat64
	dp := make([]float64, total+1)
	for p := 1; p <= total; p++ {
		dp[p] = inf
	}
	// take[i*(total+1)+p] records whether item i is taken on the best path
	// to profit p after considering items 0..i.
	take := make([]bool, n*(total+1))
	for i := 0; i < n; i++ {
		pi, wi := profits[i], items[i].Weight
		row := take[i*(total+1):]
		for p := total; p >= pi; p-- {
			if dp[p-pi] < inf && dp[p-pi]+wi < dp[p] {
				dp[p] = dp[p-pi] + wi
				row[p] = true
			}
		}
	}
	bestP := 0
	for p := total; p >= 0; p-- {
		if dp[p] <= capacity {
			bestP = p
			break
		}
	}
	// Reconstruct: walk items backwards. take rows were written in item
	// order with the classic 1-D DP, so a row flag means "item i is used on
	// the optimal path to this profit considering items 0..i"; walking from
	// the last item down recovers one optimal subset.
	chosen := make([]bool, n)
	p := bestP
	for i := n - 1; i >= 0 && p > 0; i-- {
		if take[i*(total+1)+p] {
			chosen[i] = true
			p -= profits[i]
		}
	}
	return solutionFromTake(items, chosen)
}

// Approx solves the instance with a profit-scaling FPTAS in the style of
// Ibarra and Kim: profits are divided by K = ε·Pmax/n and floored to
// integers, then the exact DP runs on the scaled instance. The returned
// solution is feasible and achieves profit at least (1−ε)·OPT. eps must be
// in (0, 1); smaller eps costs more time (the scaled profit sum grows as
// n²/ε) but approaches the optimum — exactly the tradeoff plotted in the
// paper's Figure 5.
func Approx(items []Item, capacity float64, eps float64) Solution {
	if err := validate(items, capacity); err != nil {
		panic(err)
	}
	if eps <= 0 || eps >= 1 {
		panic("knapsack: Approx eps must be in (0, 1)")
	}
	n := len(items)
	if n == 0 {
		return Solution{Selected: []int{}}
	}
	// Drop items that can never fit; remember original indices.
	idx := make([]int, 0, n)
	feas := make([]Item, 0, n)
	var pmax float64
	for i, it := range items {
		if it.Weight <= capacity {
			idx = append(idx, i)
			feas = append(feas, it)
			if it.Profit > pmax {
				pmax = it.Profit
			}
		}
	}
	if len(feas) == 0 || pmax == 0 {
		// No profitable feasible item: selecting every zero-profit feasible
		// item is harmless but pointless; return the empty solution.
		return Solution{Selected: []int{}}
	}
	k := eps * pmax / float64(len(feas))
	scaled := make([]int, len(feas))
	total := 0
	for i, it := range feas {
		scaled[i] = int(math.Floor(it.Profit / k))
		total += scaled[i]
	}
	sub := dpByProfit(feas, scaled, total, capacity)
	// Map back to original indices.
	sel := make([]int, len(sub.Selected))
	for i, j := range sub.Selected {
		sel[i] = idx[j]
	}
	sort.Ints(sel)
	out := Solution{Selected: sel}
	for _, i := range sel {
		out.Profit += items[i].Profit
		out.Weight += items[i].Weight
	}
	return out
}

// GreedyUniform solves the uniform-profit special case: when every item has
// the same profit, filling the knapsack with the lightest items first is
// optimal (section 5.2). It runs in O(n log n), or sublinear given an index
// on weights. The items' profits are not inspected; the caller asserts
// uniformity.
func GreedyUniform(items []Item, capacity float64) Solution {
	if err := validate(items, capacity); err != nil {
		panic(err)
	}
	order := make([]int, len(items))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return items[order[a]].Weight < items[order[b]].Weight
	})
	take := make([]bool, len(items))
	var w float64
	for _, i := range order {
		if w+items[i].Weight <= capacity {
			take[i] = true
			w += items[i].Weight
		} else {
			break
		}
	}
	return solutionFromTake(items, take)
}

// GreedyDensity fills the knapsack by decreasing profit/weight ratio
// (zero-weight items first) and returns the better of the greedy fill and
// the single most profitable feasible item, a classical 1/2-approximation.
// Used as a cheap baseline in the solver ablation experiments.
func GreedyDensity(items []Item, capacity float64) Solution {
	if err := validate(items, capacity); err != nil {
		panic(err)
	}
	order := make([]int, len(items))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ia, ib := items[order[a]], items[order[b]]
		// Zero-weight items are infinitely dense.
		if ia.Weight == 0 || ib.Weight == 0 {
			if ia.Weight == 0 && ib.Weight == 0 {
				return ia.Profit > ib.Profit
			}
			return ia.Weight == 0
		}
		return ia.Profit/ia.Weight > ib.Profit/ib.Weight
	})
	take := make([]bool, len(items))
	var w float64
	for _, i := range order {
		if w+items[i].Weight <= capacity {
			take[i] = true
			w += items[i].Weight
		}
	}
	greedy := solutionFromTake(items, take)

	bestSingle := -1
	for i, it := range items {
		if it.Weight <= capacity && (bestSingle < 0 || it.Profit > items[bestSingle].Profit) {
			bestSingle = i
		}
	}
	if bestSingle >= 0 && items[bestSingle].Profit > greedy.Profit {
		return Solution{
			Selected: []int{bestSingle},
			Profit:   items[bestSingle].Profit,
			Weight:   items[bestSingle].Weight,
		}
	}
	return greedy
}
