package relation

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"trapp/internal/interval"
)

func walSchema() *Schema {
	return NewSchema(
		Column{Name: "latency", Kind: Bounded},
		Column{Name: "from", Kind: Exact},
		Column{Name: "to", Kind: Exact},
	)
}

func walTuple(key int64, lat interval.Interval, from, to float64) Tuple {
	return Tuple{
		Key:      key,
		Bounds:   []interval.Interval{lat, interval.Point(from), interval.Point(to)},
		Cost:     float64(1 + key%7),
		SourceID: fmt.Sprintf("s%d", key%3),
	}
}

// snapshotTuples deep-copies the store's contents for later comparison.
func snapshotTuples(st *Store) map[int64]Tuple {
	out := make(map[int64]Tuple)
	for _, k := range st.SortedKeys() {
		tu, _ := st.Get(k)
		out[k] = tu
	}
	return out
}

func requireStoreEquals(t *testing.T, st *Store, want map[int64]Tuple, ctx string) {
	t.Helper()
	if st.Len() != len(want) {
		t.Fatalf("%s: recovered %d tuples, want %d", ctx, st.Len(), len(want))
	}
	for k, wtu := range want {
		got, ok := st.Get(k)
		if !ok {
			t.Fatalf("%s: key %d missing after recovery", ctx, k)
		}
		if got.Cost != wtu.Cost || got.SourceID != wtu.SourceID || len(got.Bounds) != len(wtu.Bounds) {
			t.Fatalf("%s: key %d tuple diverged: got %+v want %+v", ctx, k, got, wtu)
		}
		for i := range got.Bounds {
			if got.Bounds[i] != wtu.Bounds[i] {
				t.Fatalf("%s: key %d column %d bound %v, want %v", ctx, k, i, got.Bounds[i], wtu.Bounds[i])
			}
		}
	}
}

func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		b, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// logOp applies one mutation to the store and logs it, mirroring the
// store-write-then-append ordering the cache layer uses.
type walFixture struct {
	t  *testing.T
	st *Store
	w  *WAL
}

func (fx *walFixture) insert(tu Tuple) {
	if err := fx.st.Insert(tu); err != nil {
		fx.t.Fatal(err)
	}
	if _, err := fx.w.AppendInsert(&tu); err != nil {
		fx.t.Fatal(err)
	}
}

func (fx *walFixture) del(key int64) {
	fx.st.Delete(key)
	if _, err := fx.w.AppendDelete(key); err != nil {
		fx.t.Fatal(err)
	}
}

func (fx *walFixture) refresh(key int64, exact []float64) {
	if ok, err := fx.st.Refresh(key, exact); !ok || err != nil {
		fx.t.Fatalf("refresh %d: ok=%v err=%v", key, ok, err)
	}
	if _, err := fx.w.AppendRefresh(key, exact); err != nil {
		fx.t.Fatal(err)
	}
}

func (fx *walFixture) push(key int64, ivs []interval.Interval) {
	bcols := fx.st.Schema().BoundedColumns()
	ok := fx.st.Update(key, func(t *Table, i int) {
		for j, c := range bcols {
			if err := t.SetBound(i, c, ivs[j]); err != nil {
				fx.t.Fatal(err)
			}
		}
	})
	if !ok {
		fx.t.Fatalf("push to absent key %d", key)
	}
	if _, err := fx.w.AppendPush(key, ivs); err != nil {
		fx.t.Fatal(err)
	}
}

func (fx *walFixture) boundSet(key int64, col int, iv interval.Interval) {
	ok := fx.st.Update(key, func(t *Table, i int) {
		if err := t.SetBound(i, col, iv); err != nil {
			fx.t.Fatal(err)
		}
	})
	if !ok {
		fx.t.Fatalf("boundset to absent key %d", key)
	}
	if _, err := fx.w.AppendBoundSet(key, col, iv); err != nil {
		fx.t.Fatal(err)
	}
}

func TestWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, w, ri, err := OpenStore(dir, walSchema(), 4, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ri.Recovered() {
		t.Fatalf("fresh directory claims recovery: %+v", ri)
	}
	fx := &walFixture{t: t, st: st, w: w}
	var lastTicket Ticket
	for k := int64(1); k <= 40; k++ {
		fx.insert(walTuple(k, interval.Interval{Lo: float64(k), Hi: float64(k) + 2}, float64(k%5), float64(k%9)))
	}
	fx.refresh(7, []float64{7.5})
	fx.push(11, []interval.Interval{{Lo: 10.5, Hi: 12.5}})
	fx.boundSet(13, 0, interval.Interval{Lo: 12, Hi: 14})
	fx.del(20)
	fx.del(21)
	fx.insert(walTuple(20, interval.Interval{Lo: 99, Hi: 101}, 1, 2)) // delete then re-insert
	tk, err := w.AppendRefresh(3, []float64{3.25})
	if err != nil {
		t.Fatal(err)
	}
	if ok, err := st.Refresh(3, []float64{3.25}); !ok || err != nil {
		t.Fatal("refresh 3")
	}
	lastTicket = tk
	if err := w.Commit(lastTicket); err != nil {
		t.Fatal(err)
	}
	want := snapshotTuples(st)
	digest := st.ValueDigest()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	st2, w2, ri2, err := OpenStore(dir, walSchema(), 4, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if !ri2.Recovered() || ri2.TornTails != 0 {
		t.Fatalf("recovery info: %+v", ri2)
	}
	requireStoreEquals(t, st2, want, "round trip")
	if st2.ValueDigest() != digest {
		t.Fatalf("value digest diverged: %x != %x", st2.ValueDigest(), digest)
	}
	// A third open over the recovered state is deterministic too.
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	st3, w3, _, err := OpenStore(dir, walSchema(), 4, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w3.Close()
	if st3.ValueDigest() != digest {
		t.Fatal("second recovery diverged from first")
	}
}

// TestWALPowerCutEveryByte is the torn-tail property test: with a single
// shard (so the log is one file with a total order), truncating the log
// at EVERY byte boundary must recover exactly the state after the
// longest whole-record prefix — never a corrupt mixture, never an error.
func TestWALPowerCutEveryByte(t *testing.T) {
	seedDir := t.TempDir()
	st, w, _, err := OpenStore(seedDir, walSchema(), 1, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fx := &walFixture{t: t, st: st, w: w}

	// Scripted ops; after each, snapshot the expected recovered state.
	states := []map[int64]Tuple{snapshotTuples(st)}
	step := func(op func()) {
		op()
		states = append(states, snapshotTuples(st))
	}
	step(func() { fx.insert(walTuple(1, interval.Interval{Lo: 0, Hi: 2}, 3, 4)) })
	step(func() { fx.insert(walTuple(2, interval.Interval{Lo: 5, Hi: 9}, 1, 1)) })
	step(func() { fx.refresh(1, []float64{1.5}) })
	step(func() { fx.insert(walTuple(3, interval.Interval{Lo: -1, Hi: 1}, 0, 8)) })
	step(func() { fx.push(2, []interval.Interval{{Lo: 6, Hi: 7}}) })
	step(func() { fx.del(1) })
	step(func() { fx.boundSet(3, 0, interval.Interval{Lo: -0.5, Hi: 0.5}) })
	step(func() { fx.insert(walTuple(1, interval.Interval{Lo: 40, Hi: 44}, 2, 2)) })
	step(func() { fx.del(2) })
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	logPath := filepath.Join(seedDir, logName(1, 0))
	full, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	// Frame boundaries: ends[i] = offset after the i'th record.
	ends := []int{0}
	r := &segReader{b: full}
	for {
		_, ok, torn := r.nextFrame()
		if torn {
			t.Fatal("seed log itself torn")
		}
		if !ok {
			break
		}
		ends = append(ends, r.off)
	}
	if len(ends) != len(states) {
		t.Fatalf("%d records on disk, %d ops scripted", len(ends)-1, len(states)-1)
	}

	for cut := 0; cut <= len(full); cut++ {
		caseDir := filepath.Join(t.TempDir(), "cut")
		copyDir(t, seedDir, caseDir)
		if err := os.WriteFile(filepath.Join(caseDir, logName(1, 0)), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		// Longest whole-record prefix within the cut.
		prefix := 0
		for i, e := range ends {
			if e <= cut {
				prefix = i
			}
		}
		rst, rw, ri, err := OpenStore(caseDir, walSchema(), 1, WALOptions{})
		if err != nil {
			t.Fatalf("cut at %d: open failed: %v", cut, err)
		}
		requireStoreEquals(t, rst, states[prefix], fmt.Sprintf("cut at byte %d (prefix %d records)", cut, prefix))
		midFrame := cut != ends[prefix]
		if midFrame && ri.TornTails != 1 {
			t.Fatalf("cut at %d is mid-frame but TornTails=%d", cut, ri.TornTails)
		}
		if !midFrame && ri.TornTails != 0 {
			t.Fatalf("cut at %d is a frame boundary but TornTails=%d", cut, ri.TornTails)
		}
		rw.Close()
	}
}

// TestWALCorruptMidFileStopsPrefix: a bit flip in the middle of the log
// (not a truncation) must not let later records apply over a broken
// prefix — replay stops at the first bad frame.
func TestWALCorruptMidFileStopsPrefix(t *testing.T) {
	seedDir := t.TempDir()
	st, w, _, err := OpenStore(seedDir, walSchema(), 1, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fx := &walFixture{t: t, st: st, w: w}
	states := []map[int64]Tuple{snapshotTuples(st)}
	for k := int64(1); k <= 6; k++ {
		fx.insert(walTuple(k, interval.Interval{Lo: 0, Hi: 1}, 0, 0))
		states = append(states, snapshotTuples(st))
	}
	w.Close()

	logPath := filepath.Join(seedDir, logName(1, 0))
	full, _ := os.ReadFile(logPath)
	ends := []int{0}
	r := &segReader{b: full}
	for {
		if _, ok, _ := r.nextFrame(); !ok {
			break
		}
		ends = append(ends, r.off)
	}
	// Flip a byte inside record 3's payload.
	mut := append([]byte(nil), full...)
	mut[ends[2]+10] ^= 0xff
	if err := os.WriteFile(logPath, mut, 0o644); err != nil {
		t.Fatal(err)
	}
	rst, rw, ri, err := OpenStore(seedDir, walSchema(), 1, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer rw.Close()
	requireStoreEquals(t, rst, states[2], "mid-file corruption")
	if ri.TornTails != 1 || ri.RecordsReplayed != 2 {
		t.Fatalf("recovery info %+v, want 2 records then torn", ri)
	}
}

func TestWALCheckpointAndDeleteNotResurrected(t *testing.T) {
	dir := t.TempDir()
	st, w, _, err := OpenStore(dir, walSchema(), 4, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fx := &walFixture{t: t, st: st, w: w}
	for k := int64(1); k <= 30; k++ {
		fx.insert(walTuple(k, interval.Interval{Lo: 0, Hi: 4}, 0, 0))
	}
	if err := w.Checkpoint(st); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint ops land in the new generation.
	fx.del(5)
	fx.refresh(6, []float64{6.5})
	tk, err := w.AppendDelete(7)
	if err != nil {
		t.Fatal(err)
	}
	st.Delete(7)
	if err := w.Commit(tk); err != nil {
		t.Fatal(err)
	}
	want := snapshotTuples(st)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Old-generation logs must be gone; one snapshot must exist.
	entries, _ := os.ReadDir(dir)
	snaps, logs := 0, 0
	for _, e := range entries {
		if _, ok := parseSnapName(e.Name()); ok {
			snaps++
		}
		if gen, _, ok := parseLogName(e.Name()); ok {
			logs++
			if gen <= 1 {
				t.Fatalf("stale log %s survived checkpoint", e.Name())
			}
		}
	}
	if snaps != 1 {
		t.Fatalf("%d snapshots after checkpoint", snaps)
	}
	if logs == 0 {
		t.Fatal("no live log generation")
	}

	st2, w2, ri, err := OpenStore(dir, walSchema(), 4, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if ri.SnapshotGen == 0 {
		t.Fatalf("snapshot not used: %+v", ri)
	}
	requireStoreEquals(t, st2, want, "checkpoint recovery")
	if _, ok := st2.Get(5); ok {
		t.Fatal("deleted key 5 resurrected")
	}
	if _, ok := st2.Get(7); ok {
		t.Fatal("deleted key 7 resurrected")
	}
}

// TestWALStaleGenerationIgnored simulates a crash between snapshot
// publish and cleanup: a log generation ≤ the snapshot's must never be
// replayed (it holds inserts whose later deletes the snapshot absorbed).
func TestWALStaleGenerationIgnored(t *testing.T) {
	dir := t.TempDir()
	st, w, _, err := OpenStore(dir, walSchema(), 1, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fx := &walFixture{t: t, st: st, w: w}
	fx.insert(walTuple(1, interval.Interval{Lo: 0, Hi: 1}, 0, 0))
	fx.insert(walTuple(2, interval.Interval{Lo: 0, Hi: 1}, 0, 0))
	fx.del(1)
	if err := w.Checkpoint(st); err != nil { // snapshot: {2} at gen 1; live log gen 2
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Resurrect the retired generation-1 log as if cleanup never ran: a
	// full copy of the records the snapshot absorbed.
	stale := appendFrame(nil, encodeInsert(nil, &Tuple{
		Key:      1,
		Bounds:   []interval.Interval{{Lo: 0, Hi: 1}, interval.Point(0), interval.Point(0)},
		Cost:     2,
		SourceID: "s1",
	}))
	if err := os.WriteFile(filepath.Join(dir, logName(1, 0)), stale, 0o644); err != nil {
		t.Fatal(err)
	}
	st2, w2, _, err := OpenStore(dir, walSchema(), 1, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if _, ok := st2.Get(1); ok {
		t.Fatal("stale generation replayed: deleted key 1 resurrected")
	}
	if _, ok := st2.Get(2); !ok {
		t.Fatal("snapshot tuple lost")
	}
	// Cleanup must have removed the stale file again.
	if _, err := os.Stat(filepath.Join(dir, logName(1, 0))); !os.IsNotExist(err) {
		t.Fatal("stale generation not cleaned on open")
	}
}

func TestWALTruncatedSnapshotFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	st, w, _, err := OpenStore(dir, walSchema(), 1, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fx := &walFixture{t: t, st: st, w: w}
	for k := int64(1); k <= 10; k++ {
		fx.insert(walTuple(k, interval.Interval{Lo: 0, Hi: 1}, 0, 0))
	}
	if err := w.Checkpoint(st); err != nil {
		t.Fatal(err)
	}
	w.Close()
	snapPath := filepath.Join(dir, snapName(1))
	b, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(snapPath, b[:len(b)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := OpenStore(dir, walSchema(), 1, WALOptions{}); err == nil {
		t.Fatal("truncated snapshot recovered silently")
	}
}

func TestWALSnapshotTmpIgnored(t *testing.T) {
	dir := t.TempDir()
	st, w, _, err := OpenStore(dir, walSchema(), 1, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fx := &walFixture{t: t, st: st, w: w}
	fx.insert(walTuple(1, interval.Interval{Lo: 0, Hi: 1}, 0, 0))
	want := snapshotTuples(st)
	w.Close()
	// A half-written snapshot temp from a crashed checkpoint.
	tmp := filepath.Join(dir, snapName(9)+".tmp")
	if err := os.WriteFile(tmp, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	st2, w2, ri, err := OpenStore(dir, walSchema(), 1, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if ri.SnapshotGen != 0 {
		t.Fatalf("tmp snapshot trusted: %+v", ri)
	}
	requireStoreEquals(t, st2, want, "tmp ignored")
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatal("orphaned tmp not removed")
	}
}

func TestWALMetaMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	_, w, _, err := OpenStore(dir, walSchema(), 4, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	if _, _, _, err := OpenStore(dir, walSchema(), 16, WALOptions{}); err == nil {
		t.Fatal("shard-count mismatch accepted")
	}
	other := NewSchema(Column{Name: "x", Kind: Bounded})
	if _, _, _, err := OpenStore(dir, other, 4, WALOptions{}); err == nil {
		t.Fatal("schema mismatch accepted")
	}
}

// TestWALRefreshOfAbsentKeyLoud: a CRC-valid record whose effect cannot
// apply (a refresh for a key the ordered prefix never inserted) is
// corruption, not a tolerable tail.
func TestWALRefreshOfAbsentKeyLoud(t *testing.T) {
	dir := t.TempDir()
	_, w, _, err := OpenStore(dir, walSchema(), 1, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	frame := appendFrame(nil, encodeRefresh(nil, 42, []float64{1}))
	if err := os.WriteFile(filepath.Join(dir, logName(2, 0)), frame, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := OpenStore(dir, walSchema(), 1, WALOptions{}); err == nil {
		t.Fatal("refresh of absent key recovered silently")
	}
}

// TestWALGroupCommit: concurrent appenders committing through the shared
// fsync path all become durable, and the file carries every record.
func TestWALGroupCommit(t *testing.T) {
	dir := t.TempDir()
	st, w, _, err := OpenStore(dir, walSchema(), 4, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, perG = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				key := int64(g*perG + i + 1)
				tu := walTuple(key, interval.Interval{Lo: 0, Hi: 1}, 0, 0)
				if err := st.Insert(tu); err != nil {
					errs <- err
					return
				}
				tk, err := w.AppendInsert(&tu)
				if err != nil {
					errs <- err
					return
				}
				if err := w.Commit(tk); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	want := snapshotTuples(st)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	st2, w2, ri, err := OpenStore(dir, walSchema(), 4, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if ri.RecordsReplayed != goroutines*perG {
		t.Fatalf("replayed %d records, want %d", ri.RecordsReplayed, goroutines*perG)
	}
	requireStoreEquals(t, st2, want, "group commit")
}

// TestWALAutoCheckpoint: MaybeCheckpoint fires once the byte threshold
// is crossed and resets the counter.
func TestWALAutoCheckpoint(t *testing.T) {
	dir := t.TempDir()
	st, w, _, err := OpenStore(dir, walSchema(), 2, WALOptions{CheckpointBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	fx := &walFixture{t: t, st: st, w: w}
	for k := int64(1); k <= 50; k++ {
		fx.insert(walTuple(k, interval.Interval{Lo: 0, Hi: 1}, 0, 0))
		if err := w.MaybeCheckpoint(st); err != nil {
			t.Fatal(err)
		}
	}
	if w.Gen() < 2 {
		t.Fatalf("no automatic checkpoint fired (gen=%d)", w.Gen())
	}
	if w.LogBytes() >= 512+200 {
		t.Fatalf("byte counter not reset: %d", w.LogBytes())
	}
}
