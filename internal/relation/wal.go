package relation

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"trapp/internal/interval"
)

// Write-ahead log and snapshot store for a sharded relation (DESIGN.md
// §15). The layout under a data directory is:
//
//	META                      schema + shard count, written once
//	wal-<gen>-<shard>.log     per-shard append-only record log
//	snap-<gen>.snap           compacted snapshot of the whole store
//
// Generations order the files: a snapshot at generation G captures every
// effect recorded in log generations ≤ G, so recovery loads the newest
// snapshot and replays only log generations strictly greater — never a
// generation the snapshot already covers (replaying one would resurrect
// tuples deleted after the snapshot's records were first applied).
// Every open starts a fresh generation, so a process never appends to a
// file that may carry a torn tail.
//
// Durability is per-shard group commit: appenders write whole frames
// under the shard's log mutex (one write syscall per record, so a crash
// of this process can never interleave half-frames; torn tails come only
// from the storage layer losing its own write-back, which recovery
// handles by trusting exactly the valid frame prefix), and Commit
// batches concurrent callers behind a single fsync.
//
// The lock order is: a caller may hold its own higher-level shard lock
// when appending (cache shard mutex → store shard lock → walShard.mu);
// nothing below walShard.mu is ever acquired while holding it, and
// Commit/Checkpoint are called with no caller locks held.

// SyncMode selects the durability level of Commit.
type SyncMode int

const (
	// SyncGroup (the default) makes Commit block until the record's frame
	// is fsynced, batching concurrent committers behind one fsync.
	SyncGroup SyncMode = iota
	// SyncNever writes frames but never fsyncs on Commit; a crash loses
	// the OS write-back window. Close still flushes.
	SyncNever
)

// DefaultCheckpointBytes is the default volume of appended log bytes
// between automatic checkpoints.
const DefaultCheckpointBytes = 4 << 20

// WALOptions configures OpenStore.
type WALOptions struct {
	// Sync selects Commit's durability (default SyncGroup).
	Sync SyncMode
	// CheckpointBytes is the appended-bytes threshold MaybeCheckpoint
	// fires at; ≤ 0 selects DefaultCheckpointBytes.
	CheckpointBytes int64
}

func (o WALOptions) checkpointBytes() int64 {
	if o.CheckpointBytes <= 0 {
		return DefaultCheckpointBytes
	}
	return o.CheckpointBytes
}

// Ticket identifies an appended record for Commit. The zero Ticket
// commits nothing.
type Ticket struct {
	shard int
	seq   uint64
}

// RecoverInfo summarizes what OpenStore reconstructed.
type RecoverInfo struct {
	// SnapshotGen is the generation of the snapshot loaded (0 = none).
	SnapshotGen uint64
	// LogsReplayed counts log files replayed after the snapshot.
	LogsReplayed int
	// RecordsReplayed counts records applied from those logs.
	RecordsReplayed int
	// TornTails counts log files that ended in a torn or corrupt frame;
	// each contributed exactly its valid prefix.
	TornTails int
	// TornBytes is the total length of the discarded tails.
	TornBytes int64
	// Tuples is the recovered store cardinality.
	Tuples int
}

// Recovered reports whether the open found any prior durable state.
func (ri RecoverInfo) Recovered() bool {
	return ri.SnapshotGen > 0 || ri.RecordsReplayed > 0
}

// WAL is the write-ahead log half of a durable store.
type WAL struct {
	dir     string
	opts    WALOptions
	schema  *Schema
	nshards int
	shift   uint

	mu  sync.Mutex // serializes Checkpoint/Close rotation
	gen uint64

	shards []walShard

	bytesSinceCkpt atomic.Int64
	checkpointing  atomic.Bool
	closed         atomic.Bool
}

// walShard is one shard's log file plus its group-commit state.
type walShard struct {
	mu      sync.Mutex
	cond    *sync.Cond
	f       *os.File
	scratch []byte // payload encode buffer
	frame   []byte // framed write buffer
	// writeSeq numbers appended records; syncedSeq is the highest seq
	// known durable. syncing marks an in-flight fsync so rotation and
	// other committers wait instead of racing it.
	writeSeq  uint64
	syncedSeq uint64
	syncing   bool
	// err is sticky: once a write or sync fails the shard's log is in an
	// unknown state and every later append/commit reports the failure.
	err error
}

func logName(gen uint64, shard int) string {
	return fmt.Sprintf("wal-%08d-%03d.log", gen, shard)
}

func snapName(gen uint64) string {
	return fmt.Sprintf("snap-%08d.snap", gen)
}

func parseLogName(name string) (gen uint64, shard int, ok bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
		return 0, 0, false
	}
	if _, err := fmt.Sscanf(name, "wal-%08d-%03d.log", &gen, &shard); err != nil {
		return 0, 0, false
	}
	return gen, shard, true
}

func parseSnapName(name string) (gen uint64, ok bool) {
	if !strings.HasPrefix(name, "snap-") || !strings.HasSuffix(name, ".snap") {
		return 0, false
	}
	if _, err := fmt.Sscanf(name, "snap-%08d.snap", &gen); err != nil {
		return 0, false
	}
	return gen, true
}

// --- META file --------------------------------------------------------

const (
	metaMagic   = 0x54524150 // "TRAP"
	metaVersion = 1
)

func writeMeta(dir string, schema *Schema, nshards int) error {
	payload := appendWU32(nil, metaMagic)
	payload = appendWU16(payload, metaVersion)
	payload = appendWU16(payload, uint16(nshards))
	payload = appendSchema(payload, schema)
	tmp := filepath.Join(dir, "META.tmp")
	if err := os.WriteFile(tmp, appendFrame(nil, payload), 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, "META")); err != nil {
		return err
	}
	return syncDir(dir)
}

func readMeta(path string) (*Schema, int, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	r := &segReader{b: b}
	payload, ok, torn := r.nextFrame()
	if !ok || torn || r.remaining() != 0 {
		return nil, 0, fmt.Errorf("relation: corrupt META file %s", path)
	}
	pr := &segReader{b: payload}
	magic, err := pr.u64("META header") // u32 magic + u16 version + u16 nshards
	if err != nil {
		return nil, 0, err
	}
	if uint32(magic) != metaMagic {
		return nil, 0, fmt.Errorf("relation: %s is not a trapp data directory (bad magic)", path)
	}
	version := uint16(magic >> 32)
	nshards := uint16(magic >> 48)
	if version != metaVersion {
		return nil, 0, fmt.Errorf("relation: META version %d, this build reads %d", version, metaVersion)
	}
	schema, err := decodeSchema(pr)
	if err != nil {
		return nil, 0, err
	}
	if pr.remaining() != 0 {
		return nil, 0, fmt.Errorf("relation: trailing bytes in META")
	}
	return schema, int(nshards), nil
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// --- open + recovery --------------------------------------------------

// OpenStore opens (or creates) a durable store in dir. It validates the
// META file against the requested schema and shard count, loads the
// newest snapshot, replays every newer log generation — trusting exactly
// the valid frame prefix of each file — and starts a fresh log
// generation for new appends.
//
// The recovered store's values are exact replicas of what was durable;
// its bounded columns carry whatever intervals were last logged, which a
// recovering cache must NOT serve from: stale promises cannot be
// trusted across a crash, so the owner re-widens or re-handshakes every
// bound before answering bounded queries (cache.RewidenRecovered).
func OpenStore(dir string, schema *Schema, nshards int, opts WALOptions) (*Store, *WAL, RecoverInfo, error) {
	var ri RecoverInfo
	if nshards <= 0 {
		nshards = DefaultShards
	}
	n := 1
	for n < nshards {
		n <<= 1
	}
	nshards = n
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, ri, err
	}

	metaPath := filepath.Join(dir, "META")
	if _, err := os.Stat(metaPath); err == nil {
		gotSchema, gotShards, err := readMeta(metaPath)
		if err != nil {
			return nil, nil, ri, err
		}
		if gotShards != nshards {
			return nil, nil, ri, fmt.Errorf("relation: data directory %s has %d shards, caller wants %d",
				dir, gotShards, nshards)
		}
		if !schemaEqual(gotSchema, schema) {
			return nil, nil, ri, fmt.Errorf("relation: data directory %s holds schema %v, caller wants %v",
				dir, gotSchema.ColumnNames(), schema.ColumnNames())
		}
	} else if os.IsNotExist(err) {
		if werr := writeMeta(dir, schema, nshards); werr != nil {
			return nil, nil, ri, werr
		}
	} else {
		return nil, nil, ri, err
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, ri, err
	}
	type logFile struct {
		gen   uint64
		shard int
		name  string
	}
	var logs []logFile
	var snapGen uint64
	var maxGen uint64
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") {
			// Orphaned temporary from an interrupted snapshot or META
			// write; never trusted, always discarded.
			os.Remove(filepath.Join(dir, name))
			continue
		}
		if gen, shard, ok := parseLogName(name); ok {
			logs = append(logs, logFile{gen, shard, name})
			if gen > maxGen {
				maxGen = gen
			}
			continue
		}
		if gen, ok := parseSnapName(name); ok {
			if gen > snapGen {
				snapGen = gen
			}
			if gen > maxGen {
				maxGen = gen
			}
		}
	}

	st := NewStore(schema, nshards)
	if snapGen > 0 {
		// A visible .snap was published atomically (write-tmp, fsync,
		// rename), so damage here is real corruption: fail loudly rather
		// than silently serving an older state.
		n, err := loadSnapshot(st, filepath.Join(dir, snapName(snapGen)))
		if err != nil {
			return nil, nil, ri, err
		}
		ri.SnapshotGen = snapGen
		_ = n
	}

	// Replay newer generations in (gen, shard) order. Records for one key
	// always live in one shard's files, so cross-shard order within a
	// generation is immaterial; generations are strictly time-ordered.
	sort.Slice(logs, func(i, j int) bool {
		if logs[i].gen != logs[j].gen {
			return logs[i].gen < logs[j].gen
		}
		return logs[i].shard < logs[j].shard
	})
	for _, lf := range logs {
		if lf.gen <= snapGen {
			continue // covered by the snapshot; replaying would resurrect deletes
		}
		if lf.shard >= nshards {
			return nil, nil, ri, fmt.Errorf("relation: log %s names shard %d but store has %d",
				lf.name, lf.shard, nshards)
		}
		nrec, torn, tornBytes, err := replayLog(st, filepath.Join(dir, lf.name))
		if err != nil {
			return nil, nil, ri, err
		}
		ri.LogsReplayed++
		ri.RecordsReplayed += nrec
		if torn {
			ri.TornTails++
			ri.TornBytes += tornBytes
		}
	}
	ri.Tuples = st.Len()

	// Delete files the snapshot supersedes (left over when a crash landed
	// between snapshot publish and cleanup).
	for _, lf := range logs {
		if lf.gen <= snapGen {
			os.Remove(filepath.Join(dir, lf.name))
		}
	}
	for _, e := range entries {
		if gen, ok := parseSnapName(e.Name()); ok && gen < snapGen {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}

	// New appends always go to a generation no prior process touched, so
	// a torn tail can never gain valid-looking frames after it.
	w := &WAL{
		dir:     dir,
		opts:    opts,
		schema:  schema,
		nshards: nshards,
		gen:     maxGen + 1,
		shards:  make([]walShard, nshards),
	}
	shift := uint(64)
	for s := 1; s < nshards; s <<= 1 {
		shift--
	}
	w.shift = shift
	for i := range w.shards {
		sh := &w.shards[i]
		sh.cond = sync.NewCond(&sh.mu)
		f, err := os.OpenFile(filepath.Join(dir, logName(w.gen, i)),
			os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err != nil {
			for j := 0; j < i; j++ {
				w.shards[j].f.Close()
			}
			return nil, nil, ri, err
		}
		sh.f = f
	}
	if err := syncDir(dir); err != nil {
		for i := range w.shards {
			w.shards[i].f.Close()
		}
		return nil, nil, ri, err
	}
	return st, w, ri, nil
}

// loadSnapshot replays a snapshot file into an empty store. Snapshots
// are published atomically, so any defect — torn frame, missing trailer,
// count mismatch — is corruption and fails loudly.
func loadSnapshot(st *Store, path string) (int, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	r := &segReader{b: b}
	n := 0
	for {
		payload, ok, torn := r.nextFrame()
		if torn {
			return n, fmt.Errorf("relation: corrupt snapshot %s: torn frame at offset %d", path, r.off)
		}
		if !ok {
			return n, fmt.Errorf("relation: corrupt snapshot %s: missing trailer", path)
		}
		if payload[0] == recSnapEnd {
			pr := &segReader{b: payload[1:]}
			count, err := pr.u64("snapshot count")
			if err != nil {
				return n, err
			}
			if int(count) != n {
				return n, fmt.Errorf("relation: corrupt snapshot %s: trailer says %d tuples, holds %d",
					path, count, n)
			}
			if r.remaining() != 0 {
				return n, fmt.Errorf("relation: corrupt snapshot %s: %d bytes after trailer", path, r.remaining())
			}
			return n, nil
		}
		if err := applyRecord(st, payload); err != nil {
			return n, fmt.Errorf("relation: snapshot %s: %w", path, err)
		}
		n++
	}
}

// replayLog applies a log file's valid frame prefix to the store. A torn
// or corrupt frame ends the file — everything before it is exactly the
// durable prefix — but a record that decodes yet cannot apply is real
// corruption and errors out.
func replayLog(st *Store, path string) (nrec int, torn bool, tornBytes int64, err error) {
	b, rerr := os.ReadFile(path)
	if rerr != nil {
		return 0, false, 0, rerr
	}
	r := &segReader{b: b}
	for {
		payload, ok, isTorn := r.nextFrame()
		if isTorn {
			return nrec, true, int64(r.remaining()), nil
		}
		if !ok {
			return nrec, false, 0, nil
		}
		if err := applyRecord(st, payload); err != nil {
			return nrec, false, 0, fmt.Errorf("relation: log %s record %d: %w", path, nrec, err)
		}
		nrec++
	}
}

// --- appends ----------------------------------------------------------

func (w *WAL) shardOf(key int64) int {
	return int((uint64(key) * fibMult) >> w.shift)
}

// append frames the payload already encoded in sh.scratch and writes it
// with a single syscall. Caller must hold sh.mu.
func (w *WAL) appendLocked(si int, sh *walShard) (Ticket, error) {
	if sh.err != nil {
		return Ticket{}, sh.err
	}
	sh.frame = appendFrame(sh.frame[:0], sh.scratch)
	if _, err := sh.f.Write(sh.frame); err != nil {
		sh.err = fmt.Errorf("relation: wal shard %d append: %w", si, err)
		return Ticket{}, sh.err
	}
	sh.writeSeq++
	w.bytesSinceCkpt.Add(int64(len(sh.frame)))
	return Ticket{shard: si, seq: sh.writeSeq}, nil
}

func (w *WAL) appendRecord(key int64, enc func(dst []byte) []byte) (Ticket, error) {
	if w.closed.Load() {
		return Ticket{}, fmt.Errorf("relation: wal is closed")
	}
	si := w.shardOf(key)
	sh := &w.shards[si]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.scratch = enc(sh.scratch[:0])
	return w.appendLocked(si, sh)
}

// AppendInsert logs a full-tuple upsert.
func (w *WAL) AppendInsert(tu *Tuple) (Ticket, error) {
	return w.appendRecord(tu.Key, func(dst []byte) []byte { return encodeInsert(dst, tu) })
}

// AppendDelete logs a key removal.
func (w *WAL) AppendDelete(key int64) (Ticket, error) {
	return w.appendRecord(key, func(dst []byte) []byte { return encodeDelete(dst, key) })
}

// AppendRefresh logs a query-initiated refresh install: the bounded
// columns' exact master values, in schema order.
func (w *WAL) AppendRefresh(key int64, exact []float64) (Ticket, error) {
	return w.appendRecord(key, func(dst []byte) []byte { return encodeRefresh(dst, key, exact) })
}

// AppendPush logs a value-initiated refresh: the materialized interval
// for every bounded column, in schema order.
func (w *WAL) AppendPush(key int64, ivs []interval.Interval) (Ticket, error) {
	return w.appendRecord(key, func(dst []byte) []byte { return encodePush(dst, key, ivs) })
}

// AppendBoundSet logs a single column's bound replacement.
func (w *WAL) AppendBoundSet(key int64, col int, iv interval.Interval) (Ticket, error) {
	return w.appendRecord(key, func(dst []byte) []byte { return encodeBoundSet(dst, key, col, iv) })
}

// Commit blocks until the ticketed record is durable (SyncGroup).
// Concurrent committers on one shard batch behind a single fsync: the
// first becomes the syncer, captures the current write frontier, syncs
// outside the lock, then advances syncedSeq past everyone who appended
// before the sync started. Call with no higher-level locks held.
func (w *WAL) Commit(t Ticket) error {
	if t.seq == 0 {
		return nil
	}
	sh := &w.shards[t.shard]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if w.opts.Sync == SyncNever {
		return sh.err
	}
	for sh.err == nil && sh.syncedSeq < t.seq {
		if sh.syncing {
			sh.cond.Wait()
			continue
		}
		sh.syncing = true
		flushTo := sh.writeSeq
		f := sh.f
		sh.mu.Unlock()
		err := f.Sync()
		sh.mu.Lock()
		sh.syncing = false
		if err != nil && sh.err == nil {
			sh.err = fmt.Errorf("relation: wal shard %d sync: %w", t.shard, err)
		}
		if sh.err == nil && flushTo > sh.syncedSeq {
			sh.syncedSeq = flushTo
		}
		sh.cond.Broadcast()
	}
	return sh.err
}

// --- checkpointing ----------------------------------------------------

// MaybeCheckpoint runs Checkpoint when enough log bytes have accumulated
// since the last one. Cheap when below threshold; safe to call from any
// commit path holding no locks.
func (w *WAL) MaybeCheckpoint(st *Store) error {
	if w.bytesSinceCkpt.Load() < w.opts.checkpointBytes() {
		return nil
	}
	return w.Checkpoint(st)
}

// Checkpoint compacts the log: it rotates every shard to a new log
// generation, writes a snapshot of the store published under the retired
// generation's number, then deletes the files the snapshot supersedes.
// Appends continue throughout — a record that lands in the new
// generation before its store effect is read by the snapshot is simply
// replayed over the snapshot on recovery, converging because records
// carry their full effect. Returns nil without working if another
// checkpoint is in flight.
func (w *WAL) Checkpoint(st *Store) error {
	if !w.checkpointing.CompareAndSwap(false, true) {
		return nil
	}
	defer w.checkpointing.Store(false)
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed.Load() {
		return fmt.Errorf("relation: wal is closed")
	}

	oldGen := w.gen
	newGen := w.gen + 1
	for i := range w.shards {
		sh := &w.shards[i]
		sh.mu.Lock()
		for sh.syncing {
			sh.cond.Wait()
		}
		err := sh.err
		if err == nil {
			err = sh.f.Sync()
		}
		if err == nil {
			err = sh.f.Close()
		}
		var nf *os.File
		if err == nil {
			nf, err = os.OpenFile(filepath.Join(w.dir, logName(newGen, i)),
				os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		}
		if err != nil {
			if sh.err == nil {
				sh.err = fmt.Errorf("relation: wal shard %d rotate: %w", i, err)
			}
			err = sh.err
			sh.mu.Unlock()
			return err
		}
		sh.f = nf
		sh.syncedSeq = sh.writeSeq
		sh.cond.Broadcast()
		sh.mu.Unlock()
	}
	w.gen = newGen

	if err := w.writeSnapshot(st, oldGen); err != nil {
		return err
	}
	w.bytesSinceCkpt.Store(0)

	// The snapshot supersedes every log generation ≤ oldGen and every
	// older snapshot. Deletion failures are harmless (cleaned next open).
	entries, err := os.ReadDir(w.dir)
	if err != nil {
		return nil
	}
	for _, e := range entries {
		if gen, _, ok := parseLogName(e.Name()); ok && gen <= oldGen {
			os.Remove(filepath.Join(w.dir, e.Name()))
		} else if gen, ok := parseSnapName(e.Name()); ok && gen < oldGen {
			os.Remove(filepath.Join(w.dir, e.Name()))
		}
	}
	return nil
}

// writeSnapshot publishes a snapshot of the store atomically: stream to
// a temporary, fsync, rename into place, fsync the directory.
func (w *WAL) writeSnapshot(st *Store, gen uint64) error {
	final := filepath.Join(w.dir, snapName(gen))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	var scratch []byte
	count := 0
	werr := func() error {
		for i := 0; i < st.NumShards(); i++ {
			var err error
			st.ViewShard(i, func(t *Table) {
				for j := 0; j < t.Len(); j++ {
					scratch = encodeInsert(scratch[:0], t.At(j))
					if _, err = bw.Write(appendFrame(nil, scratch)); err != nil {
						return
					}
					count++
				}
			})
			if err != nil {
				return err
			}
		}
		scratch = append(scratch[:0], recSnapEnd)
		scratch = appendWU64(scratch, uint64(count))
		if _, err := bw.Write(appendFrame(nil, scratch)); err != nil {
			return err
		}
		if err := bw.Flush(); err != nil {
			return err
		}
		return f.Sync()
	}()
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp)
		return fmt.Errorf("relation: snapshot %s: %w", final, werr)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(w.dir)
}

// Close flushes and closes every shard log. Appends after Close fail.
func (w *WAL) Close() error {
	if !w.closed.CompareAndSwap(false, true) {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	var first error
	for i := range w.shards {
		sh := &w.shards[i]
		sh.mu.Lock()
		for sh.syncing {
			sh.cond.Wait()
		}
		if sh.f != nil {
			if err := sh.f.Sync(); err != nil && first == nil {
				first = err
			}
			if err := sh.f.Close(); err != nil && first == nil {
				first = err
			}
			sh.f = nil
		}
		if sh.err == nil {
			sh.err = fmt.Errorf("relation: wal is closed")
		}
		sh.cond.Broadcast()
		sh.mu.Unlock()
	}
	return first
}

// Dir returns the data directory path.
func (w *WAL) Dir() string { return w.dir }

// Gen returns the current log generation (for tests and health surfaces).
func (w *WAL) Gen() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.gen
}

// LogBytes returns the bytes appended since the last checkpoint.
func (w *WAL) LogBytes() int64 { return w.bytesSinceCkpt.Load() }

var _ io.Closer = (*WAL)(nil)
