package relation

import (
	"fmt"
	"sync/atomic"

	"trapp/internal/interval"
)

// Tuple is one cached row: per-column guaranteed bounds plus the cost of
// refreshing the tuple from its source. Exact columns hold point intervals.
type Tuple struct {
	// Key identifies the master data object this tuple replicates.
	Key int64
	// Bounds has one interval per schema column.
	Bounds []interval.Interval
	// Cost is the (query-initiated) refresh cost C_i for this tuple.
	Cost float64
	// SourceID names the data source owning the master copy; empty for
	// standalone tables used in tests.
	SourceID string
}

// Clone returns a deep copy of the tuple.
func (t Tuple) Clone() Tuple {
	b := make([]interval.Interval, len(t.Bounds))
	copy(b, t.Bounds)
	t.Bounds = b
	return t
}

// Table is a cached relation: an ordered collection of tuples sharing a
// schema. A Table performs no locking of its own: as a shard of a Store
// it is guarded by that shard's RWMutex (see Store), which the query
// processor shares — scans hold it for reading, refresh installation and
// source pushes for writing. Standalone tables (tests, direct Processor
// registration) get a private lock from the processor, or may be used
// unlocked single-threaded.
type Table struct {
	schema *Schema
	tuples []Tuple
	byKey  map[int64]int
	// version counts completed mutations (Insert/Delete/Refresh/SetBound).
	// Every mutating method bumps it after the write, so a reader that
	// observes an unchanged version across two scans saw the same table
	// state both times — the invalidation token for the query layer's
	// plan cache. Reading it is lock-free; bumping happens under whatever
	// lock already guards the mutation.
	version atomic.Uint64
}

// NewTable returns an empty table with the given schema.
func NewTable(schema *Schema) *Table {
	return &Table{schema: schema, byKey: make(map[int64]int)}
}

// Schema returns the table's schema.
func (t *Table) Schema() *Schema { return t.schema }

// Len returns the number of tuples. Because insertions and deletions are
// propagated to caches immediately (paper section 3), this equals the master
// cardinality, which is why COUNT without a predicate needs no refreshes.
func (t *Table) Len() int { return len(t.tuples) }

// At returns a pointer to the i'th tuple for in-place refresh. The pointer
// is invalidated by Insert/Delete.
func (t *Table) At(i int) *Tuple { return &t.tuples[i] }

// ByKey returns the index of the tuple with the given key, or -1.
func (t *Table) ByKey(key int64) int {
	if i, ok := t.byKey[key]; ok {
		return i
	}
	return -1
}

// Insert appends a tuple. It returns an error if the bound count does not
// match the schema, an exact column holds a non-point bound, or the key is
// already present (keys identify master objects uniquely).
func (t *Table) Insert(tu Tuple) error {
	if len(tu.Bounds) != t.schema.NumColumns() {
		return fmt.Errorf("relation: tuple has %d bounds, schema has %d columns",
			len(tu.Bounds), t.schema.NumColumns())
	}
	for i, b := range tu.Bounds {
		if b.IsEmpty() {
			return fmt.Errorf("relation: empty bound for column %q", t.schema.Column(i).Name)
		}
		if t.schema.Column(i).Kind == Exact && !b.IsPoint() {
			return fmt.Errorf("relation: non-point bound %v for exact column %q",
				b, t.schema.Column(i).Name)
		}
	}
	if tu.Cost < 0 {
		return fmt.Errorf("relation: negative refresh cost %g", tu.Cost)
	}
	if _, dup := t.byKey[tu.Key]; dup {
		return fmt.Errorf("relation: duplicate key %d", tu.Key)
	}
	t.byKey[tu.Key] = len(t.tuples)
	t.tuples = append(t.tuples, tu.Clone())
	t.version.Add(1)
	return nil
}

// MustInsert inserts the tuple and panics on error; for fixtures and tests.
func (t *Table) MustInsert(tu Tuple) {
	if err := t.Insert(tu); err != nil {
		panic(err)
	}
}

// Delete removes the tuple with the given key, modelling an immediately
// propagated master deletion. It reports whether the key was present.
func (t *Table) Delete(key int64) bool {
	i, ok := t.byKey[key]
	if !ok {
		return false
	}
	last := len(t.tuples) - 1
	if i != last {
		t.tuples[i] = t.tuples[last]
		t.byKey[t.tuples[i].Key] = i
	}
	t.tuples = t.tuples[:last]
	delete(t.byKey, key)
	t.version.Add(1)
	return true
}

// Refresh replaces the bounded columns of tuple i with the given exact
// master values (one per bounded column, in schema order), collapsing their
// bounds to points — the cache-side effect of a query-initiated refresh.
func (t *Table) Refresh(i int, exact []float64) error {
	bcols := t.schema.BoundedColumns()
	if len(exact) != len(bcols) {
		return fmt.Errorf("relation: refresh got %d values, table has %d bounded columns",
			len(exact), len(bcols))
	}
	tu := &t.tuples[i]
	for j, c := range bcols {
		tu.Bounds[c] = interval.Point(exact[j])
	}
	t.version.Add(1)
	return nil
}

// SetBound replaces a single column's bound on tuple i, used when a source
// pushes a refreshed (value + new bound) for one object attribute.
func (t *Table) SetBound(i, col int, b interval.Interval) error {
	if b.IsEmpty() {
		return fmt.Errorf("relation: empty bound")
	}
	if t.schema.Column(col).Kind == Exact && !b.IsPoint() {
		return fmt.Errorf("relation: non-point bound for exact column %q", t.schema.Column(col).Name)
	}
	t.tuples[i].Bounds[col] = b
	t.version.Add(1)
	return nil
}

// Version returns the table's mutation counter. Two equal reads bracketing
// a scan certify the scan saw a single, unmutated table state; any
// completed mutation in between is guaranteed to change the value.
func (t *Table) Version() uint64 { return t.version.Load() }

// Clone returns a deep copy of the table, used by the query processor to
// evaluate refresh plans without mutating the live cache.
func (t *Table) Clone() *Table {
	c := NewTable(t.schema)
	for _, tu := range t.tuples {
		c.byKey[tu.Key] = len(c.tuples)
		c.tuples = append(c.tuples, tu.Clone())
	}
	return c
}

// Tuples returns the underlying tuple slice for read-only iteration.
// Callers must not append to or reorder it.
func (t *Table) Tuples() []Tuple { return t.tuples }

// TotalWidth returns the sum of bound widths over the given column, a
// convenient imprecision measure for experiments.
func (t *Table) TotalWidth(col int) float64 {
	var w float64
	for i := range t.tuples {
		w += t.tuples[i].Bounds[col].Width()
	}
	return w
}
