// Package relation provides the relational substrate for TRAPP/AG: schemas,
// tuples whose attribute values are guaranteed bounds (intervals), cached
// tables, and ordered indexes over bound endpoints.
//
// A cached table is the data-cache-side copy of a master table (paper
// section 3): each bounded attribute stores an interval [L, H] guaranteed to
// contain the master value, exact attributes store point intervals, and each
// tuple carries the cost of refreshing it from its source.
package relation

import (
	"fmt"
)

// Kind distinguishes exact attributes (always point intervals, e.g. keys or
// dimensions) from bounded attributes (replicated numeric measures).
type Kind int8

const (
	// Exact attributes hold precise values known to the cache.
	Exact Kind = iota
	// Bounded attributes hold guaranteed bounds on remote master values.
	Bounded
)

// String returns "exact" or "bounded".
func (k Kind) String() string {
	if k == Exact {
		return "exact"
	}
	return "bounded"
}

// Column describes one attribute of a relation.
type Column struct {
	Name string
	Kind Kind
}

// Schema is an ordered list of named columns. Schemas are immutable after
// construction and safe for concurrent use.
type Schema struct {
	cols   []Column
	byName map[string]int
}

// NewSchema builds a schema from the given columns. It panics on duplicate
// or empty column names, which indicate programmer error.
func NewSchema(cols ...Column) *Schema {
	s := &Schema{
		cols:   make([]Column, len(cols)),
		byName: make(map[string]int, len(cols)),
	}
	copy(s.cols, cols)
	for i, c := range cols {
		if c.Name == "" {
			panic("relation: empty column name")
		}
		if _, dup := s.byName[c.Name]; dup {
			panic(fmt.Sprintf("relation: duplicate column %q", c.Name))
		}
		s.byName[c.Name] = i
	}
	return s
}

// NumColumns returns the number of columns.
func (s *Schema) NumColumns() int { return len(s.cols) }

// Column returns the i'th column.
func (s *Schema) Column(i int) Column { return s.cols[i] }

// Lookup returns the index of the named column and whether it exists.
func (s *Schema) Lookup(name string) (int, bool) {
	i, ok := s.byName[name]
	return i, ok
}

// MustLookup returns the index of the named column, panicking if absent.
// Use for statically known column names (tests, examples, fixtures).
func (s *Schema) MustLookup(name string) int {
	i, ok := s.byName[name]
	if !ok {
		panic(fmt.Sprintf("relation: no column %q", name))
	}
	return i
}

// ColumnNames returns the column names in order.
func (s *Schema) ColumnNames() []string {
	names := make([]string, len(s.cols))
	for i, c := range s.cols {
		names[i] = c.Name
	}
	return names
}

// BoundedColumns returns the indexes of all bounded columns.
func (s *Schema) BoundedColumns() []int {
	var out []int
	for i, c := range s.cols {
		if c.Kind == Bounded {
			out = append(out, i)
		}
	}
	return out
}
