package relation

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"trapp/internal/interval"
)

// This file is the durable codec under the write-ahead log and snapshots
// (see wal.go): length-prefixed, checksummed records carrying the full
// effect of one store mutation, and the snapshot framing built from the
// same records. Records are self-contained and idempotent — an insert
// carries the whole tuple, a refresh carries the exact values, a push
// carries the materialized intervals — so replaying any record over a
// store that already reflects it converges, which is what lets a
// snapshot taken concurrently with appends (per-shard read cuts at
// slightly different instants) recover exactly: the new-generation log
// replays over the snapshot and every divergence is overwritten by the
// record's full effect.
//
// Frame layout (all little-endian):
//
//	u32 payload length | u32 CRC32-IEEE(payload) | payload
//
// The payload starts with a one-byte record kind. Replay walks frames
// until the file ends cleanly or a frame fails the length or checksum
// test; everything from the first bad frame on is a torn tail — the
// prefix before it is exactly the durable state.

// Record kinds. The numbering is part of the on-disk format.
const (
	recInsert   = byte(1) // full tuple: upsert on replay
	recDelete   = byte(2) // key
	recRefresh  = byte(3) // key + exact values (bounded columns point-collapse)
	recPush     = byte(4) // key + materialized bounded-column intervals
	recBoundSet = byte(5) // key + column + one interval
	recSnapEnd  = byte(6) // snapshot trailer: tuple count
)

// maxRecordLen bounds a frame's claimed payload length; anything larger
// is treated as a torn/corrupt frame rather than an allocation request.
const maxRecordLen = 1 << 24

var crcTable = crc32.MakeTable(crc32.IEEE)

func appendWU16(dst []byte, v uint16) []byte { return binary.LittleEndian.AppendUint16(dst, v) }
func appendWU32(dst []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(dst, v) }
func appendWU64(dst []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(dst, v) }
func appendWF64(dst []byte, v float64) []byte {
	return appendWU64(dst, math.Float64bits(v))
}
func appendWStr(dst []byte, s string) []byte {
	dst = appendWU16(dst, uint16(len(s)))
	return append(dst, s...)
}
func appendWIv(dst []byte, iv interval.Interval) []byte {
	dst = appendWF64(dst, iv.Lo)
	return appendWF64(dst, iv.Hi)
}

// appendFrame wraps a payload (already appended after the 8-byte header
// slot) with its length prefix and checksum. Callers reserve the header
// with appendFrameHeader-style usage: encode into scratch, then frame.
func appendFrame(dst, payload []byte) []byte {
	dst = appendWU32(dst, uint32(len(payload)))
	dst = appendWU32(dst, crc32.Checksum(payload, crcTable))
	return append(dst, payload...)
}

// segReader walks a byte slice of frames or payload fields.
type segReader struct {
	b   []byte
	off int
}

func (r *segReader) remaining() int { return len(r.b) - r.off }

func (r *segReader) u8(what string) (byte, error) {
	if r.remaining() < 1 {
		return 0, fmt.Errorf("relation: truncated %s", what)
	}
	v := r.b[r.off]
	r.off++
	return v, nil
}

func (r *segReader) u16(what string) (uint16, error) {
	if r.remaining() < 2 {
		return 0, fmt.Errorf("relation: truncated %s", what)
	}
	v := binary.LittleEndian.Uint16(r.b[r.off:])
	r.off += 2
	return v, nil
}

func (r *segReader) u64(what string) (uint64, error) {
	if r.remaining() < 8 {
		return 0, fmt.Errorf("relation: truncated %s", what)
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v, nil
}

func (r *segReader) f64(what string) (float64, error) {
	v, err := r.u64(what)
	return math.Float64frombits(v), err
}

func (r *segReader) str(what string) (string, error) {
	n, err := r.u16(what)
	if err != nil {
		return "", err
	}
	if r.remaining() < int(n) {
		return "", fmt.Errorf("relation: truncated %s", what)
	}
	s := string(r.b[r.off : r.off+int(n)])
	r.off += int(n)
	return s, nil
}

func (r *segReader) iv(what string) (interval.Interval, error) {
	lo, err := r.f64(what)
	if err != nil {
		return interval.Interval{}, err
	}
	hi, err := r.f64(what)
	if err != nil {
		return interval.Interval{}, err
	}
	return interval.Interval{Lo: lo, Hi: hi}, nil
}

// nextFrame extracts the next frame's payload. ok=false means the stream
// ended — cleanly (torn=false, zero remaining bytes) or at a torn/corrupt
// frame (torn=true; the remaining bytes are the tail that must not be
// trusted).
func (r *segReader) nextFrame() (payload []byte, ok, torn bool) {
	if r.remaining() == 0 {
		return nil, false, false
	}
	if r.remaining() < 8 {
		return nil, false, true
	}
	n := binary.LittleEndian.Uint32(r.b[r.off:])
	sum := binary.LittleEndian.Uint32(r.b[r.off+4:])
	if n > maxRecordLen || r.remaining()-8 < int(n) {
		return nil, false, true
	}
	payload = r.b[r.off+8 : r.off+8+int(n)]
	if crc32.Checksum(payload, crcTable) != sum {
		return nil, false, true
	}
	r.off += 8 + int(n)
	return payload, true, false
}

// --- record payload encoding -----------------------------------------

func encodeInsert(dst []byte, tu *Tuple) []byte {
	dst = append(dst, recInsert)
	dst = appendWU64(dst, uint64(tu.Key))
	dst = appendWF64(dst, tu.Cost)
	dst = appendWStr(dst, tu.SourceID)
	dst = appendWU16(dst, uint16(len(tu.Bounds)))
	for _, iv := range tu.Bounds {
		dst = appendWIv(dst, iv)
	}
	return dst
}

func encodeDelete(dst []byte, key int64) []byte {
	dst = append(dst, recDelete)
	return appendWU64(dst, uint64(key))
}

func encodeRefresh(dst []byte, key int64, exact []float64) []byte {
	dst = append(dst, recRefresh)
	dst = appendWU64(dst, uint64(key))
	dst = appendWU16(dst, uint16(len(exact)))
	for _, v := range exact {
		dst = appendWF64(dst, v)
	}
	return dst
}

func encodePush(dst []byte, key int64, ivs []interval.Interval) []byte {
	dst = append(dst, recPush)
	dst = appendWU64(dst, uint64(key))
	dst = appendWU16(dst, uint16(len(ivs)))
	for _, iv := range ivs {
		dst = appendWIv(dst, iv)
	}
	return dst
}

func encodeBoundSet(dst []byte, key int64, col int, iv interval.Interval) []byte {
	dst = append(dst, recBoundSet)
	dst = appendWU64(dst, uint64(key))
	dst = appendWU16(dst, uint16(col))
	return appendWIv(dst, iv)
}

// applyRecord decodes one record payload and applies its full effect to
// the store. Decode and apply failures are corruption (a CRC-valid frame
// whose contents do not fit the schema, or an operation on state the
// ordered prefix cannot have produced) and fail loudly; replay never
// guesses.
func applyRecord(st *Store, payload []byte) error {
	r := &segReader{b: payload}
	kind, err := r.u8("record kind")
	if err != nil {
		return err
	}
	switch kind {
	case recInsert:
		tu, err := decodeInsert(r)
		if err != nil {
			return err
		}
		st.Delete(tu.Key) // upsert: replay over a snapshot that already has it
		if err := st.Insert(tu); err != nil {
			return fmt.Errorf("relation: replay insert key %d: %w", tu.Key, err)
		}
	case recDelete:
		key, err := r.u64("delete key")
		if err != nil {
			return err
		}
		st.Delete(int64(key)) // idempotent: absence is fine
	case recRefresh:
		key, err := r.u64("refresh key")
		if err != nil {
			return err
		}
		n, err := r.u16("refresh value count")
		if err != nil {
			return err
		}
		vals := make([]float64, n)
		for i := range vals {
			if vals[i], err = r.f64("refresh value"); err != nil {
				return err
			}
		}
		ok, rerr := st.Refresh(int64(key), vals)
		if rerr != nil {
			return fmt.Errorf("relation: replay refresh key %d: %w", int64(key), rerr)
		}
		if !ok {
			return fmt.Errorf("relation: replay refresh of absent key %d", int64(key))
		}
	case recPush:
		key, err := r.u64("push key")
		if err != nil {
			return err
		}
		n, err := r.u16("push interval count")
		if err != nil {
			return err
		}
		ivs := make([]interval.Interval, n)
		for i := range ivs {
			if ivs[i], err = r.iv("push interval"); err != nil {
				return err
			}
		}
		var serr error
		ok := st.Update(int64(key), func(t *Table, i int) {
			bcols := t.Schema().BoundedColumns()
			if len(bcols) != len(ivs) {
				serr = fmt.Errorf("relation: replay push has %d intervals, schema has %d bounded columns",
					len(ivs), len(bcols))
				return
			}
			for j, col := range bcols {
				if serr = t.SetBound(i, col, ivs[j]); serr != nil {
					return
				}
			}
		})
		if serr != nil {
			return serr
		}
		if !ok {
			return fmt.Errorf("relation: replay push to absent key %d", int64(key))
		}
	case recBoundSet:
		key, err := r.u64("boundset key")
		if err != nil {
			return err
		}
		col, err := r.u16("boundset column")
		if err != nil {
			return err
		}
		iv, err := r.iv("boundset interval")
		if err != nil {
			return err
		}
		if int(col) >= st.Schema().NumColumns() {
			return fmt.Errorf("relation: replay boundset column %d out of range", col)
		}
		var serr error
		ok := st.Update(int64(key), func(t *Table, i int) {
			serr = t.SetBound(i, int(col), iv)
		})
		if serr != nil {
			return serr
		}
		if !ok {
			return fmt.Errorf("relation: replay boundset to absent key %d", int64(key))
		}
	default:
		return fmt.Errorf("relation: unknown record kind 0x%02x", kind)
	}
	return nil
}

func decodeInsert(r *segReader) (Tuple, error) {
	var tu Tuple
	key, err := r.u64("insert key")
	if err != nil {
		return tu, err
	}
	tu.Key = int64(key)
	if tu.Cost, err = r.f64("insert cost"); err != nil {
		return tu, err
	}
	if tu.SourceID, err = r.str("insert source id"); err != nil {
		return tu, err
	}
	n, err := r.u16("insert bound count")
	if err != nil {
		return tu, err
	}
	tu.Bounds = make([]interval.Interval, n)
	for i := range tu.Bounds {
		if tu.Bounds[i], err = r.iv("insert bound"); err != nil {
			return tu, err
		}
	}
	return tu, nil
}

// --- schema codec (META file and snapshot headers) --------------------

func appendSchema(dst []byte, s *Schema) []byte {
	dst = appendWU16(dst, uint16(s.NumColumns()))
	for i := 0; i < s.NumColumns(); i++ {
		c := s.Column(i)
		dst = appendWStr(dst, c.Name)
		dst = append(dst, byte(c.Kind))
	}
	return dst
}

func decodeSchema(r *segReader) (*Schema, error) {
	n, err := r.u16("schema column count")
	if err != nil {
		return nil, err
	}
	cols := make([]Column, n)
	for i := range cols {
		if cols[i].Name, err = r.str("schema column name"); err != nil {
			return nil, err
		}
		k, err := r.u8("schema column kind")
		if err != nil {
			return nil, err
		}
		cols[i].Kind = Kind(k)
	}
	return NewSchema(cols...), nil
}

// schemaEqual reports structural equality of two schemas.
func schemaEqual(a, b *Schema) bool {
	if a.NumColumns() != b.NumColumns() {
		return false
	}
	for i := 0; i < a.NumColumns(); i++ {
		if a.Column(i) != b.Column(i) {
			return false
		}
	}
	return true
}

// ValueDigest hashes the durable identity of every tuple — key, source,
// refresh cost, and the exact columns' values — over the store's natural
// scan order (canonical for any shard count up to NumCanonicalBuckets).
// Bounded columns are deliberately excluded: their intervals are
// re-widened on recovery (DESIGN.md §15), so two stores holding the same
// mastered data digest equal no matter what bound state each carries.
// The crash-recovery e2e compares this across restarts to prove values
// survive bit-identically.
func (s *Store) ValueDigest() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	exact := make([]int, 0, s.schema.NumColumns())
	for i := 0; i < s.schema.NumColumns(); i++ {
		if s.schema.Column(i).Kind == Exact {
			exact = append(exact, i)
		}
	}
	for i := range s.shards {
		s.ViewShard(i, func(t *Table) {
			for j := 0; j < t.Len(); j++ {
				tu := t.At(j)
				mix(uint64(tu.Key))
				for k := 0; k < len(tu.SourceID); k++ {
					h ^= uint64(tu.SourceID[k])
					h *= prime64
				}
				mix(math.Float64bits(tu.Cost))
				for _, col := range exact {
					mix(math.Float64bits(tu.Bounds[col].Lo))
				}
			}
		})
	}
	return h
}
