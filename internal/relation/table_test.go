package relation

import (
	"testing"

	"trapp/internal/interval"
)

func linkTuple(key int64, from, to float64, lat, bw, tr interval.Interval, cost float64) Tuple {
	return Tuple{
		Key: key,
		Bounds: []interval.Interval{
			interval.Point(from), interval.Point(to), lat, bw, tr,
		},
		Cost: cost,
	}
}

func smallTable(t *testing.T) *Table {
	t.Helper()
	tab := NewTable(testSchema())
	tab.MustInsert(linkTuple(1, 1, 2, interval.New(2, 4), interval.New(60, 70), interval.New(95, 105), 3))
	tab.MustInsert(linkTuple(2, 2, 4, interval.New(5, 7), interval.New(45, 60), interval.New(110, 120), 6))
	return tab
}

func TestTableInsertLen(t *testing.T) {
	tab := smallTable(t)
	if tab.Len() != 2 {
		t.Fatalf("Len = %d", tab.Len())
	}
	if tab.At(0).Key != 1 || tab.At(1).Key != 2 {
		t.Error("keys wrong")
	}
}

func TestTableByKey(t *testing.T) {
	tab := smallTable(t)
	if tab.ByKey(2) != 1 {
		t.Errorf("ByKey(2) = %d", tab.ByKey(2))
	}
	if tab.ByKey(99) != -1 {
		t.Errorf("ByKey(99) = %d", tab.ByKey(99))
	}
}

func TestTableInsertErrors(t *testing.T) {
	tab := NewTable(testSchema())
	// Wrong arity.
	if err := tab.Insert(Tuple{Key: 1, Bounds: []interval.Interval{interval.Point(1)}}); err == nil {
		t.Error("wrong arity accepted")
	}
	// Non-point exact column.
	bad := linkTuple(1, 0, 0, interval.New(1, 2), interval.New(1, 2), interval.New(1, 2), 1)
	bad.Bounds[0] = interval.New(1, 2)
	if err := tab.Insert(bad); err == nil {
		t.Error("non-point exact accepted")
	}
	// Negative cost.
	neg := linkTuple(1, 0, 0, interval.New(1, 2), interval.New(1, 2), interval.New(1, 2), -1)
	if err := tab.Insert(neg); err == nil {
		t.Error("negative cost accepted")
	}
	// Duplicate key.
	ok := linkTuple(1, 0, 0, interval.New(1, 2), interval.New(1, 2), interval.New(1, 2), 1)
	if err := tab.Insert(ok); err != nil {
		t.Fatal(err)
	}
	if err := tab.Insert(ok); err == nil {
		t.Error("duplicate key accepted")
	}
	// Empty bound.
	empt := linkTuple(2, 0, 0, interval.Empty, interval.New(1, 2), interval.New(1, 2), 1)
	if err := tab.Insert(empt); err == nil {
		t.Error("empty bound accepted")
	}
}

func TestTableDelete(t *testing.T) {
	tab := smallTable(t)
	if !tab.Delete(1) {
		t.Fatal("Delete(1) = false")
	}
	if tab.Len() != 1 {
		t.Fatalf("Len after delete = %d", tab.Len())
	}
	if tab.ByKey(2) != 0 {
		t.Error("swap-delete broke key map")
	}
	if tab.Delete(1) {
		t.Error("second Delete(1) = true")
	}
}

func TestTableRefresh(t *testing.T) {
	tab := smallTable(t)
	if err := tab.Refresh(0, []float64{3, 61, 98}); err != nil {
		t.Fatal(err)
	}
	tu := tab.At(0)
	lat := tu.Bounds[2]
	if !lat.IsPoint() || lat.Lo != 3 {
		t.Errorf("latency after refresh = %v", lat)
	}
	if !tu.Bounds[4].IsPoint() || tu.Bounds[4].Lo != 98 {
		t.Errorf("traffic after refresh = %v", tu.Bounds[4])
	}
	// Exact columns untouched.
	if tu.Bounds[0].Lo != 1 {
		t.Error("exact column modified")
	}
	// Wrong arity.
	if err := tab.Refresh(0, []float64{1}); err == nil {
		t.Error("wrong refresh arity accepted")
	}
}

func TestTableSetBound(t *testing.T) {
	tab := smallTable(t)
	if err := tab.SetBound(0, 2, interval.New(1, 9)); err != nil {
		t.Fatal(err)
	}
	if !tab.At(0).Bounds[2].Equal(interval.New(1, 9)) {
		t.Error("SetBound did not apply")
	}
	if err := tab.SetBound(0, 0, interval.New(1, 9)); err == nil {
		t.Error("non-point on exact column accepted")
	}
	if err := tab.SetBound(0, 2, interval.Empty); err == nil {
		t.Error("empty bound accepted")
	}
}

func TestTableCloneIsDeep(t *testing.T) {
	tab := smallTable(t)
	c := tab.Clone()
	if err := c.Refresh(0, []float64{3, 61, 98}); err != nil {
		t.Fatal(err)
	}
	if tab.At(0).Bounds[2].IsPoint() {
		t.Error("clone shares bound storage with original")
	}
	if c.ByKey(2) != 1 {
		t.Error("clone key map wrong")
	}
}

func TestTableTotalWidth(t *testing.T) {
	tab := smallTable(t)
	// latency widths: (4-2) + (7-5) = 4
	if got := tab.TotalWidth(2); got != 4 {
		t.Errorf("TotalWidth(latency) = %g, want 4", got)
	}
}

func TestTupleClone(t *testing.T) {
	tu := linkTuple(1, 0, 0, interval.New(1, 2), interval.New(3, 4), interval.New(5, 6), 1)
	c := tu.Clone()
	c.Bounds[2] = interval.Point(9)
	if tu.Bounds[2].IsPoint() {
		t.Error("Clone shares bounds")
	}
}
