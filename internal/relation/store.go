package relation

import (
	"sort"
	"sync"
	"sync/atomic"
)

// DefaultShards is the shard count used when a Store is created without an
// explicit one. Eight shards keep per-shard lock contention low for the
// workload sizes in this repository while the per-shard fixed scan
// overhead stays small.
const DefaultShards = 8

// fibMult is the 64-bit Fibonacci-hashing multiplier (⌊2^64/φ⌋, odd).
// Multiplying a key by it and keeping the top bits spreads consecutive
// keys evenly across shards.
const fibMult = 0x9E3779B97F4A7C15

// Store is a sharded cached relation: tuples are partitioned across a
// fixed power-of-two number of shards by a hash of their key, and each
// shard owns its tuple slice, its key index, and its own RWMutex. Readers
// of disjoint shards never contend, and a writer (a source push, a
// refresh install, a membership change) blocks only scans of the one
// shard owning the key — the storage layer half of the engine's per-shard
// locking protocol (DESIGN.md §5).
//
// Iteration is deterministic: shard membership depends only on the key
// and the shard count, shards are always visited in ascending index
// order, and the aggregation layer canonicalizes collected tuples into
// the canonical (bucket, key) order — so bounded answers computed over a
// Store are bit-identical to those computed over a flat reference table
// holding the same tuples (see aggregate.Collect).
type Store struct {
	schema *Schema
	shift  uint // 64 − log2(len(shards))
	shards []storeShard
	length atomic.Int64
	// version counts completed mutations through any of the store's
	// write entry points (Insert/Delete/Update/UpdateShard/Refresh). The
	// bump happens after the shard write, so a reader that observes an
	// unchanged version across two scans saw identical store contents —
	// the invalidation token validated by the query layer's plan cache.
	version atomic.Uint64
}

// storeShard is one shard: a flat Table plus its lock.
type storeShard struct {
	mu  sync.RWMutex
	tab *Table
}

// NewStore returns an empty sharded store. nshards is rounded up to the
// next power of two; values ≤ 0 select DefaultShards.
func NewStore(schema *Schema, nshards int) *Store {
	if nshards <= 0 {
		nshards = DefaultShards
	}
	n, shift := 1, uint(64)
	for n < nshards {
		n <<= 1
		shift--
	}
	s := &Store{schema: schema, shift: shift, shards: make([]storeShard, n)}
	for i := range s.shards {
		s.shards[i].tab = NewTable(schema)
	}
	return s
}

// Schema returns the store's schema.
func (s *Store) Schema() *Schema { return s.schema }

// NumShards returns the (power-of-two) shard count.
func (s *Store) NumShards() int { return len(s.shards) }

// ShardOf returns the index of the shard owning the given key. The
// mapping depends only on the key and the shard count, so two stores
// with equal shard counts partition identically.
func (s *Store) ShardOf(key int64) int {
	return int((uint64(key) * fibMult) >> s.shift)
}

// NumCanonicalBuckets is the canonical bucket count. It is deliberately
// larger than DefaultShards: buckets are the placement unit of the
// partition tier (a ring assigns whole buckets to nodes, so the bucket
// count caps the cluster width and sets the rebalancing grain), while the
// shard count stays small to keep the per-query fixed scan overhead low.
// It must be a power of two no smaller than any store's shard count for
// the natural-scan-order property below to hold.
const NumCanonicalBuckets = 64

// canonicalShift is the hash shift selecting the top log2(NumCanonicalBuckets)
// bits, used by the canonical order below.
var canonicalShift = func() uint {
	n, shift := 1, uint(64)
	for n < NumCanonicalBuckets {
		n <<= 1
		shift--
	}
	return shift
}()

// CanonicalBucket returns the key's bucket in the canonical order: the
// top log2(NumCanonicalBuckets) bits of its Fibonacci hash. Buckets are
// the unit of both fold structure (order-sensitive folds combine
// per-bucket subtotals in ascending bucket order — see aggregate.State)
// and cluster partitioning (a partition owns whole buckets, so
// per-partition partial folds merge into the global fold bit-identically).
func CanonicalBucket(key int64) int {
	return int((uint64(key) * fibMult) >> canonicalShift)
}

// CanonicalLess is the canonical tuple order every order-sensitive fold
// over a cached relation uses: ascending (canonical bucket, key). A
// store's shard index is the top log2(nshards) hash bits — a prefix of
// the bucket bits whenever nshards ≤ NumCanonicalBuckets — so visiting
// shards in index order and each shard's canonically sorted tuples in
// sequence IS canonical order: the hot path pays nothing for
// determinism, while other layouts (the flat reference table) reorder
// their scans to match. The order depends only on the key set, so
// answers and refresh plans are bit-identical across physical layouts.
func CanonicalLess(a, b int64) bool {
	sa := (uint64(a) * fibMult) >> canonicalShift
	sb := (uint64(b) * fibMult) >> canonicalShift
	if sa != sb {
		return sa < sb
	}
	return a < b
}

// Canonical reports whether this store's natural scan order (shards in
// index order, canonically sorted within each shard) is already the
// canonical order — true whenever the shard index bits are a prefix of
// the canonical bucket bits, i.e. for any shard count up to
// NumCanonicalBuckets.
func (s *Store) Canonical() bool { return len(s.shards) <= NumCanonicalBuckets }

// Len returns the total number of tuples across all shards. Like the
// flat Table's Len it equals the master cardinality, maintained as a
// lock-free counter so predicate-free COUNT needs no shard locks.
func (s *Store) Len() int { return int(s.length.Load()) }

// ShardLens returns the tuple count of every shard in index order — the
// occupancy histogram the scale harness reports to detect hot-shard
// imbalance. Each shard is read under its own lock, so the counts are
// per-shard consistent but not a cross-shard atomic snapshot.
func (s *Store) ShardLens() []int {
	lens := make([]int, len(s.shards))
	for i := range s.shards {
		s.shards[i].mu.RLock()
		lens[i] = s.shards[i].tab.Len()
		s.shards[i].mu.RUnlock()
	}
	return lens
}

// ShardLock returns shard i's RWMutex for callers that coordinate their
// own multi-step access (the cache shares it with the query processor's
// scans). Lock-ordering rule: a goroutine holding one shard lock may
// only acquire another with a larger shard index, and no shard lock may
// be held while calling into a data source.
func (s *Store) ShardLock(i int) *sync.RWMutex { return &s.shards[i].mu }

// ShardTable returns shard i's backing table. The caller must hold the
// shard's lock (read or write as appropriate).
func (s *Store) ShardTable(i int) *Table { return s.shards[i].tab }

// ViewShard runs fn over shard i's table under the shard's read lock.
func (s *Store) ViewShard(i int, fn func(t *Table)) {
	s.shards[i].mu.RLock()
	defer s.shards[i].mu.RUnlock()
	fn(s.shards[i].tab)
}

// UpdateShard runs fn over shard i's table under the shard's write lock.
// fn must not change the table's cardinality or tuple order (use
// Insert/Delete, which maintain the store's length counter and the
// per-shard key-order invariant); mutating bounds in place is fine.
func (s *Store) UpdateShard(i int, fn func(t *Table)) {
	s.shards[i].mu.Lock()
	defer s.shards[i].mu.Unlock()
	fn(s.shards[i].tab)
	s.version.Add(1)
}

// Version returns the store's mutation counter. Two equal reads
// bracketing a scan certify the scan saw a single, unmutated store state;
// any completed mutation in between is guaranteed to change the value.
func (s *Store) Version() uint64 { return s.version.Load() }

// View runs fn with the owning shard's table and the key's position
// under the shard read lock; it reports whether the key was present (fn
// is not called otherwise).
func (s *Store) View(key int64, fn func(t *Table, i int)) bool {
	sh := &s.shards[s.ShardOf(key)]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	i := sh.tab.ByKey(key)
	if i < 0 {
		return false
	}
	fn(sh.tab, i)
	return true
}

// Update is View with the shard write-locked, for in-place mutation of
// one tuple's bounds.
func (s *Store) Update(key int64, fn func(t *Table, i int)) bool {
	sh := &s.shards[s.ShardOf(key)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	i := sh.tab.ByKey(key)
	if i < 0 {
		return false
	}
	fn(sh.tab, i)
	s.version.Add(1)
	return true
}

// Get returns a deep copy of the tuple with the given key.
func (s *Store) Get(key int64) (Tuple, bool) {
	var tu Tuple
	ok := s.View(key, func(t *Table, i int) { tu = t.At(i).Clone() })
	return tu, ok
}

// Insert adds a tuple to its owning shard, with the flat Table's
// validation rules. Keys are unique store-wide because every duplicate
// hashes to the same shard. Each shard's tuples are kept in canonical
// order (CanonicalLess) — the store invariant that lets scans emit
// canonically ordered inputs by concatenating shard runs instead of
// sorting (mutations pay the O(shard) splice; scans are the hot path).
func (s *Store) Insert(tu Tuple) error {
	sh := &s.shards[s.ShardOf(tu.Key)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	t := sh.tab
	if err := t.Insert(tu); err != nil {
		return err
	}
	// Table.Insert appends; rotate the new tuple back to its sorted slot.
	for i := len(t.tuples) - 1; i > 0 && CanonicalLess(tu.Key, t.tuples[i-1].Key); i-- {
		t.tuples[i], t.tuples[i-1] = t.tuples[i-1], t.tuples[i]
		t.byKey[t.tuples[i].Key] = i
		t.byKey[t.tuples[i-1].Key] = i - 1
	}
	s.length.Add(1)
	s.version.Add(1)
	return nil
}

// MustInsert inserts the tuple and panics on error; for fixtures.
func (s *Store) MustInsert(tu Tuple) {
	if err := s.Insert(tu); err != nil {
		panic(err)
	}
}

// Delete removes the tuple with the given key, locking only its shard
// and preserving the shard's canonical order (Table.Delete's swap-remove
// would break it).
func (s *Store) Delete(key int64) bool {
	sh := &s.shards[s.ShardOf(key)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	t := sh.tab
	i, ok := t.byKey[key]
	if !ok {
		return false
	}
	copy(t.tuples[i:], t.tuples[i+1:])
	t.tuples = t.tuples[:len(t.tuples)-1]
	for j := i; j < len(t.tuples); j++ {
		t.byKey[t.tuples[j].Key] = j
	}
	delete(t.byKey, key)
	s.length.Add(-1)
	s.version.Add(1)
	return true
}

// Refresh collapses the bounded columns of the keyed tuple to the given
// exact values (see Table.Refresh), write-locking only the owning shard.
// It reports whether the key was present.
func (s *Store) Refresh(key int64, exact []float64) (bool, error) {
	var err error
	ok := s.Update(key, func(t *Table, i int) { err = t.Refresh(i, exact) })
	return ok, err
}

// SortedKeys returns every cached key in ascending order — the
// deterministic iteration order callers use to build plans and views
// independent of shard layout.
func (s *Store) SortedKeys() []int64 {
	out := make([]int64, 0, s.Len())
	for i := range s.shards {
		s.ViewShard(i, func(t *Table) {
			for j := 0; j < t.Len(); j++ {
				out = append(out, t.At(j).Key)
			}
		})
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// TotalWidth sums bound widths over the given column across all shards,
// the imprecision measure used by experiments.
func (s *Store) TotalWidth(col int) float64 {
	var w float64
	for i := range s.shards {
		s.ViewShard(i, func(t *Table) { w += t.TotalWidth(col) })
	}
	return w
}
