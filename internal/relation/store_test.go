package relation

import (
	"math/rand"
	"sort"
	"testing"

	"trapp/internal/interval"
)

func storeSchema() *Schema {
	return NewSchema(
		Column{Name: "id", Kind: Exact},
		Column{Name: "v", Kind: Bounded},
	)
}

func storeTuple(key int64, lo, hi, cost float64) Tuple {
	return Tuple{
		Key:    key,
		Cost:   cost,
		Bounds: []interval.Interval{interval.Point(float64(key)), interval.New(lo, hi)},
	}
}

func TestStoreShardCountRounding(t *testing.T) {
	for _, tc := range []struct{ ask, want int }{
		{0, DefaultShards}, {-3, DefaultShards}, {1, 1}, {2, 2}, {3, 4}, {5, 8}, {16, 16}, {17, 32},
	} {
		st := NewStore(storeSchema(), tc.ask)
		if st.NumShards() != tc.want {
			t.Errorf("NewStore(%d): %d shards, want %d", tc.ask, st.NumShards(), tc.want)
		}
	}
}

func TestStoreShardOfDeterministicAndInRange(t *testing.T) {
	a := NewStore(storeSchema(), 8)
	b := NewStore(storeSchema(), 8)
	counts := make([]int, a.NumShards())
	for key := int64(-500); key < 500; key++ {
		sa, sb := a.ShardOf(key), b.ShardOf(key)
		if sa != sb {
			t.Fatalf("ShardOf(%d) differs across equal stores: %d vs %d", key, sa, sb)
		}
		if sa < 0 || sa >= a.NumShards() {
			t.Fatalf("ShardOf(%d) = %d out of range", key, sa)
		}
		counts[sa]++
	}
	// Fibonacci hashing spreads consecutive keys: no shard may be empty
	// or hold a wildly disproportionate share of 1000 consecutive keys.
	for si, n := range counts {
		if n == 0 || n > 4*1000/a.NumShards() {
			t.Errorf("shard %d holds %d of 1000 keys", si, n)
		}
	}
}

func TestStoreSingleShardIsFlat(t *testing.T) {
	st := NewStore(storeSchema(), 1)
	if st.NumShards() != 1 {
		t.Fatalf("shards = %d", st.NumShards())
	}
	for key := int64(0); key < 100; key++ {
		if st.ShardOf(key) != 0 {
			t.Fatalf("ShardOf(%d) = %d in single-shard store", key, st.ShardOf(key))
		}
	}
}

func TestStoreInsertDeleteGet(t *testing.T) {
	st := NewStore(storeSchema(), 4)
	for key := int64(1); key <= 40; key++ {
		st.MustInsert(storeTuple(key, 0, 10, float64(key)))
	}
	if st.Len() != 40 {
		t.Fatalf("Len = %d", st.Len())
	}
	if err := st.Insert(storeTuple(7, 0, 1, 1)); err == nil {
		t.Error("duplicate key accepted")
	}
	tu, ok := st.Get(7)
	if !ok || tu.Key != 7 || tu.Cost != 7 {
		t.Fatalf("Get(7) = %+v, %v", tu, ok)
	}
	// Get returns a deep copy: mutating it must not touch the store.
	tu.Bounds[1] = interval.Point(-999)
	if got, _ := st.Get(7); got.Bounds[1] == interval.Point(-999) {
		t.Error("Get returned aliased bounds")
	}
	if !st.Delete(7) || st.Delete(7) {
		t.Error("delete/double-delete misbehaved")
	}
	if st.Len() != 39 {
		t.Errorf("Len after delete = %d", st.Len())
	}
	if _, ok := st.Get(7); ok {
		t.Error("deleted key still present")
	}
}

func TestStoreRefreshAndUpdateLockOnlyOwningShard(t *testing.T) {
	st := NewStore(storeSchema(), 4)
	for key := int64(1); key <= 16; key++ {
		st.MustInsert(storeTuple(key, 0, 10, 1))
	}
	// Holding every other shard's write lock must not block a refresh of
	// key 5's shard.
	own := st.ShardOf(5)
	for si := 0; si < st.NumShards(); si++ {
		if si != own {
			st.ShardLock(si).Lock()
		}
	}
	ok, err := st.Refresh(5, []float64{3.5})
	if !ok || err != nil {
		t.Fatalf("Refresh(5) = %v, %v", ok, err)
	}
	for si := 0; si < st.NumShards(); si++ {
		if si != own {
			st.ShardLock(si).Unlock()
		}
	}
	tu, _ := st.Get(5)
	if !tu.Bounds[1].IsPoint() || tu.Bounds[1].Lo != 3.5 {
		t.Errorf("refreshed bound = %v", tu.Bounds[1])
	}
	if ok, _ := st.Refresh(999, []float64{1}); ok {
		t.Error("refresh of missing key reported installed")
	}
}

func TestStoreSortedKeys(t *testing.T) {
	st := NewStore(storeSchema(), 8)
	rng := rand.New(rand.NewSource(42))
	want := make([]int64, 0, 100)
	for _, key := range rng.Perm(100) {
		st.MustInsert(storeTuple(int64(key), 0, 1, 1))
		want = append(want, int64(key))
	}
	sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
	got := st.SortedKeys()
	if len(got) != len(want) {
		t.Fatalf("SortedKeys len = %d", len(got))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("SortedKeys[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestStoreTotalWidthMatchesFlat(t *testing.T) {
	st := NewStore(storeSchema(), 4)
	tab := NewTable(storeSchema())
	for key := int64(1); key <= 30; key++ {
		tu := storeTuple(key, 0, float64(key%7), 1)
		st.MustInsert(tu)
		tab.MustInsert(tu)
	}
	if got, want := st.TotalWidth(1), tab.TotalWidth(1); got != want {
		t.Errorf("TotalWidth = %g, flat %g", got, want)
	}
}

// TestShardedIndexMatchesFlat maintains a flat Index and a ShardedIndex
// over the same evolving tuple set and checks every probe agrees.
func TestShardedIndexMatchesFlat(t *testing.T) {
	schema := storeSchema()
	st := NewStore(schema, 4)
	tab := NewTable(schema)
	rng := rand.New(rand.NewSource(7))
	for key := int64(1); key <= 60; key++ {
		lo := rng.Float64() * 100
		tu := storeTuple(key, lo, lo+rng.Float64()*20, 1)
		st.MustInsert(tu)
		tab.MustInsert(tu)
	}
	for _, kind := range []EndpointKind{LowerEndpoint, UpperEndpoint, BoundWidth} {
		flat := NewIndex(tab, 1, kind)
		sharded := NewShardedIndex(st, 1, kind)
		check := func(stage string) {
			t.Helper()
			if flat.Len() != sharded.Len() {
				t.Fatalf("%s %v: len %d vs %d", stage, kind, flat.Len(), sharded.Len())
			}
			fq, fk, fok := flat.Min()
			sq, _, sok := sharded.Min()
			if fok != sok || fq != sq {
				t.Fatalf("%s %v: Min (%g,%d,%v) vs (%g,_,%v)", stage, kind, fq, fk, fok, sq, sok)
			}
			fq, _, fok = flat.Max()
			sq, _, sok = sharded.Max()
			if fok != sok || fq != sq {
				t.Fatalf("%s %v: Max %g vs %g", stage, kind, fq, sq)
			}
			for _, pivot := range []float64{-5, 20, 50, 80, 500} {
				a, b := flat.KeysLess(pivot), sharded.KeysLess(pivot)
				if !sameKeySet(a, b) {
					t.Fatalf("%s %v: KeysLess(%g) %v vs %v", stage, kind, pivot, a, b)
				}
				a, b = flat.KeysGreater(pivot), sharded.KeysGreater(pivot)
				if !sameKeySet(a, b) {
					t.Fatalf("%s %v: KeysGreater(%g) %v vs %v", stage, kind, pivot, a, b)
				}
			}
		}
		check("build")
		// Mutate some bounds and keep both indexes updated.
		for i := 0; i < 30; i++ {
			key := int64(rng.Intn(60) + 1)
			lo := rng.Float64() * 100
			b := interval.New(lo, lo+rng.Float64()*20)
			ti := tab.ByKey(key)
			if ti < 0 {
				continue
			}
			if err := tab.SetBound(ti, 1, b); err != nil {
				t.Fatal(err)
			}
			st.Update(key, func(tt *Table, j int) {
				if err := tt.SetBound(j, 1, b); err != nil {
					t.Fatal(err)
				}
			})
			if err := flat.Update(key); err != nil {
				t.Fatal(err)
			}
			if err := sharded.Update(key); err != nil {
				t.Fatal(err)
			}
		}
		check("update")
		// Remove a few tuples.
		for _, key := range []int64{3, 17, 42} {
			tab.Delete(key)
			st.Delete(key)
			flat.Remove(key)
			sharded.Remove(key)
		}
		check("remove")
		sharded.Rebuild()
		check("rebuild")
		if err := sharded.Update(999); err == nil {
			t.Error("sharded index update of unknown key accepted")
		}
	}
}

func sameKeySet(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]int64(nil), a...)
	bs := append([]int64(nil), b...)
	sort.Slice(as, func(i, j int) bool { return as[i] < as[j] })
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}
