package relation

import (
	"fmt"

	"trapp/internal/interval"
)

// EndpointKind selects which quantity of a bounded column an Index orders.
type EndpointKind int8

const (
	// LowerEndpoint indexes L_i, used by CHOOSE_REFRESH for MIN.
	LowerEndpoint EndpointKind = iota
	// UpperEndpoint indexes H_i, used to find min_k(H_k) and by MAX.
	UpperEndpoint
	// BoundWidth indexes H_i − L_i, used by the uniform-cost SUM greedy.
	BoundWidth
	// RefreshCost indexes C_i, used by CHOOSE_REFRESH for COUNT.
	RefreshCost
)

// String names the endpoint kind.
func (k EndpointKind) String() string {
	switch k {
	case LowerEndpoint:
		return "lower"
	case UpperEndpoint:
		return "upper"
	case BoundWidth:
		return "width"
	default:
		return "cost"
	}
}

// Index is a maintained B-tree over one endpoint quantity of one column of
// a table, providing the sublinear scans assumed by the paper's complexity
// analysis (sections 5.1, 6.3, 8.3). The index maps quantity values to
// tuple keys; after any table mutation the owner must call Update (or
// Rebuild) to keep it consistent.
type Index struct {
	table *Table
	col   int // -1 for RefreshCost
	kind  EndpointKind
	tree  *BTree
	// current records each indexed tuple's current key so updates can
	// remove the stale entry.
	current map[int64]float64
}

// NewIndex builds an index over the given column and endpoint kind. For
// RefreshCost the column argument is ignored (pass -1).
func NewIndex(t *Table, col int, kind EndpointKind) *Index {
	idx := &Index{table: t, col: col, kind: kind, tree: NewBTree(16),
		current: make(map[int64]float64)}
	idx.Rebuild()
	return idx
}

// quantity extracts the indexed quantity from a tuple.
func (idx *Index) quantity(tu *Tuple) float64 {
	switch idx.kind {
	case LowerEndpoint:
		return tu.Bounds[idx.col].Lo
	case UpperEndpoint:
		return tu.Bounds[idx.col].Hi
	case BoundWidth:
		return tu.Bounds[idx.col].Width()
	default:
		return tu.Cost
	}
}

// Rebuild reconstructs the index from scratch in O(n log n).
func (idx *Index) Rebuild() {
	idx.tree = NewBTree(16)
	for k := range idx.current {
		delete(idx.current, k)
	}
	for i := range idx.table.Tuples() {
		tu := idx.table.At(i)
		q := idx.quantity(tu)
		idx.tree.Insert(q, tu.Key)
		idx.current[tu.Key] = q
	}
}

// Update refreshes the index entry for the tuple with the given key after
// its bounds changed, and inserts it if new. It returns an error if the key
// is not in the table.
func (idx *Index) Update(key int64) error {
	i := idx.table.ByKey(key)
	if i < 0 {
		return fmt.Errorf("relation: index update for unknown key %d", key)
	}
	if old, ok := idx.current[key]; ok {
		idx.tree.Delete(old, key)
	}
	q := idx.quantity(idx.table.At(i))
	idx.tree.Insert(q, key)
	idx.current[key] = q
	return nil
}

// Remove drops the index entry for a deleted tuple.
func (idx *Index) Remove(key int64) {
	if old, ok := idx.current[key]; ok {
		idx.tree.Delete(old, key)
		delete(idx.current, key)
	}
}

// Len returns the number of indexed tuples.
func (idx *Index) Len() int { return idx.tree.Len() }

// Min returns the tuple key with the smallest indexed quantity.
func (idx *Index) Min() (quantity float64, key int64, ok bool) { return idx.tree.Min() }

// Max returns the tuple key with the largest indexed quantity.
func (idx *Index) Max() (quantity float64, key int64, ok bool) { return idx.tree.Max() }

// KeysLess returns the keys of all tuples whose indexed quantity is
// strictly less than pivot, in ascending quantity order.
func (idx *Index) KeysLess(pivot float64) []int64 {
	var out []int64
	idx.tree.AscendLess(pivot, func(_ float64, id int64) bool {
		out = append(out, id)
		return true
	})
	return out
}

// KeysGreater returns the keys of all tuples whose indexed quantity is
// strictly greater than pivot, in descending quantity order.
func (idx *Index) KeysGreater(pivot float64) []int64 {
	var out []int64
	idx.tree.DescendGreater(pivot, func(_ float64, id int64) bool {
		out = append(out, id)
		return true
	})
	return out
}

// FirstN returns up to n keys in ascending quantity order — e.g. the n
// cheapest tuples for the COUNT refresh algorithm.
func (idx *Index) FirstN(n int) []int64 {
	out := make([]int64, 0, n)
	idx.tree.Ascend(func(_ float64, id int64) bool {
		if len(out) == n {
			return false
		}
		out = append(out, id)
		return true
	})
	return out
}

// boundOf is a convenience for tests: the indexed column's bound of a key.
func (idx *Index) boundOf(key int64) interval.Interval {
	i := idx.table.ByKey(key)
	return idx.table.At(i).Bounds[idx.col]
}
