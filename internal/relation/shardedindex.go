package relation

import (
	"fmt"
	"sort"
)

// ShardedIndex is the shard-native counterpart of Index: one B-tree per
// shard of a Store, each indexing the same endpoint quantity of the same
// column over that shard's tuples. Updates route to the owning shard's
// tree, so concurrent maintenance of different shards' entries never
// touches shared structure; probes combine the per-shard trees.
//
// Like Index, a ShardedIndex performs no locking of its own: the owner
// must coordinate calls with the store's shard locks (the refresh paths
// take the relevant shard's read lock around probes and its write lock
// around updates). Key-set results are returned in ascending key order,
// the store's deterministic iteration order.
type ShardedIndex struct {
	store *Store
	col   int
	kind  EndpointKind
	idx   []*Index
}

// NewShardedIndex builds one per-shard index over the given column and
// endpoint kind (col is ignored for RefreshCost, pass -1). Each shard is
// read-locked while its tree is built.
func NewShardedIndex(st *Store, col int, kind EndpointKind) *ShardedIndex {
	si := &ShardedIndex{store: st, col: col, kind: kind, idx: make([]*Index, st.NumShards())}
	for i := range si.idx {
		st.ViewShard(i, func(t *Table) {
			si.idx[i] = NewIndex(t, col, kind)
		})
	}
	return si
}

// Rebuild reconstructs every shard's tree.
func (si *ShardedIndex) Rebuild() {
	for i, ix := range si.idx {
		si.store.ViewShard(i, func(*Table) { ix.Rebuild() })
	}
}

// Update refreshes the entry for the key in its owning shard's tree.
func (si *ShardedIndex) Update(key int64) error {
	ix := si.idx[si.store.ShardOf(key)]
	if err := ix.Update(key); err != nil {
		return fmt.Errorf("relation: sharded index: %w", err)
	}
	return nil
}

// Remove drops the key's entry from its owning shard's tree.
func (si *ShardedIndex) Remove(key int64) {
	si.idx[si.store.ShardOf(key)].Remove(key)
}

// Len returns the total number of indexed tuples.
func (si *ShardedIndex) Len() int {
	n := 0
	for _, ix := range si.idx {
		n += ix.Len()
	}
	return n
}

// Min returns the tuple key with the smallest indexed quantity across
// all shards (ties broken by the smaller key, for determinism).
func (si *ShardedIndex) Min() (quantity float64, key int64, ok bool) {
	for _, ix := range si.idx {
		q, k, has := ix.Min()
		if !has {
			continue
		}
		if !ok || q < quantity || (q == quantity && k < key) {
			quantity, key, ok = q, k, true
		}
	}
	return quantity, key, ok
}

// Max returns the tuple key with the largest indexed quantity across all
// shards (ties broken by the smaller key).
func (si *ShardedIndex) Max() (quantity float64, key int64, ok bool) {
	for _, ix := range si.idx {
		q, k, has := ix.Max()
		if !has {
			continue
		}
		if !ok || q > quantity || (q == quantity && k < key) {
			quantity, key, ok = q, k, true
		}
	}
	return quantity, key, ok
}

// KeysLess returns the keys of all tuples whose indexed quantity is
// strictly less than pivot, ascending by key.
func (si *ShardedIndex) KeysLess(pivot float64) []int64 {
	var out []int64
	for _, ix := range si.idx {
		out = append(out, ix.KeysLess(pivot)...)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// KeysGreater returns the keys of all tuples whose indexed quantity is
// strictly greater than pivot, ascending by key.
func (si *ShardedIndex) KeysGreater(pivot float64) []int64 {
	var out []int64
	for _, ix := range si.idx {
		out = append(out, ix.KeysGreater(pivot)...)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}
