package relation

import (
	"testing"

	"trapp/internal/interval"
)

func indexTable(t *testing.T) *Table {
	t.Helper()
	tab := NewTable(testSchema())
	// Figure 2 latency bounds.
	data := []struct {
		key  int64
		lat  interval.Interval
		cost float64
	}{
		{1, interval.New(2, 4), 3},
		{2, interval.New(5, 7), 6},
		{3, interval.New(12, 16), 6},
		{4, interval.New(9, 11), 8},
		{5, interval.New(8, 11), 4},
		{6, interval.New(4, 6), 2},
	}
	for _, d := range data {
		tab.MustInsert(linkTuple(d.key, 0, 0, d.lat, interval.New(0, 1), interval.New(0, 1), d.cost))
	}
	return tab
}

func TestIndexLowerEndpoint(t *testing.T) {
	tab := indexTable(t)
	lat := tab.Schema().MustLookup("latency")
	idx := NewIndex(tab, lat, LowerEndpoint)
	if idx.Len() != 6 {
		t.Fatalf("Len = %d", idx.Len())
	}
	q, key, ok := idx.Min()
	if !ok || q != 2 || key != 1 {
		t.Errorf("Min = (%g, %d)", q, key)
	}
	keys := idx.KeysLess(8)
	// L < 8: tuples 1 (L=2), 6 (L=4), 2 (L=5)
	want := map[int64]bool{1: true, 2: true, 6: true}
	if len(keys) != 3 {
		t.Fatalf("KeysLess(8) = %v", keys)
	}
	for _, k := range keys {
		if !want[k] {
			t.Errorf("unexpected key %d", k)
		}
	}
}

func TestIndexUpperEndpoint(t *testing.T) {
	tab := indexTable(t)
	lat := tab.Schema().MustLookup("latency")
	idx := NewIndex(tab, lat, UpperEndpoint)
	q, key, ok := idx.Min()
	if !ok || q != 4 || key != 1 {
		t.Errorf("Min upper = (%g, %d)", q, key)
	}
	keys := idx.KeysGreater(11)
	if len(keys) != 1 || keys[0] != 3 {
		t.Errorf("KeysGreater(11) = %v", keys)
	}
}

func TestIndexWidthAndCost(t *testing.T) {
	tab := indexTable(t)
	lat := tab.Schema().MustLookup("latency")
	widx := NewIndex(tab, lat, BoundWidth)
	q, _, _ := widx.Min()
	if q != 2 {
		t.Errorf("min width = %g", q)
	}
	cidx := NewIndex(tab, -1, RefreshCost)
	cheapest := cidx.FirstN(2)
	if len(cheapest) != 2 || cheapest[0] != 6 || cheapest[1] != 1 {
		t.Errorf("FirstN(2) = %v, want [6 1]", cheapest)
	}
}

func TestIndexUpdateAfterRefresh(t *testing.T) {
	tab := indexTable(t)
	lat := tab.Schema().MustLookup("latency")
	idx := NewIndex(tab, lat, LowerEndpoint)
	// Refresh tuple 1's bounded columns to exact values; latency 3.
	i := tab.ByKey(1)
	if err := tab.Refresh(i, []float64{3, 0.5, 0.5}); err != nil {
		t.Fatal(err)
	}
	if err := idx.Update(1); err != nil {
		t.Fatal(err)
	}
	q, key, _ := idx.Min()
	if q != 3 || key != 1 {
		t.Errorf("Min after refresh = (%g, %d), want (3, 1)", q, key)
	}
	if err := idx.Update(999); err == nil {
		t.Error("Update(999) did not fail")
	}
}

func TestIndexRemove(t *testing.T) {
	tab := indexTable(t)
	lat := tab.Schema().MustLookup("latency")
	idx := NewIndex(tab, lat, LowerEndpoint)
	tab.Delete(1)
	idx.Remove(1)
	if idx.Len() != 5 {
		t.Fatalf("Len after remove = %d", idx.Len())
	}
	q, key, _ := idx.Min()
	if q != 4 || key != 6 {
		t.Errorf("Min after remove = (%g, %d)", q, key)
	}
	idx.Remove(1) // idempotent
	if idx.Len() != 5 {
		t.Error("double remove changed size")
	}
}

func TestIndexBoundOf(t *testing.T) {
	tab := indexTable(t)
	lat := tab.Schema().MustLookup("latency")
	idx := NewIndex(tab, lat, LowerEndpoint)
	if got := idx.boundOf(3); !got.Equal(interval.New(12, 16)) {
		t.Errorf("boundOf(3) = %v", got)
	}
}

func TestEndpointKindString(t *testing.T) {
	if LowerEndpoint.String() != "lower" || UpperEndpoint.String() != "upper" ||
		BoundWidth.String() != "width" || RefreshCost.String() != "cost" {
		t.Error("EndpointKind.String wrong")
	}
}
