package relation

import "testing"

func testSchema() *Schema {
	return NewSchema(
		Column{Name: "from", Kind: Exact},
		Column{Name: "to", Kind: Exact},
		Column{Name: "latency", Kind: Bounded},
		Column{Name: "bandwidth", Kind: Bounded},
		Column{Name: "traffic", Kind: Bounded},
	)
}

func TestSchemaLookup(t *testing.T) {
	s := testSchema()
	if s.NumColumns() != 5 {
		t.Fatalf("NumColumns = %d", s.NumColumns())
	}
	i, ok := s.Lookup("latency")
	if !ok || i != 2 {
		t.Errorf("Lookup(latency) = %d, %v", i, ok)
	}
	if _, ok := s.Lookup("nope"); ok {
		t.Error("Lookup(nope) found")
	}
	if s.MustLookup("traffic") != 4 {
		t.Error("MustLookup wrong")
	}
}

func TestSchemaMustLookupPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	testSchema().MustLookup("nope")
}

func TestSchemaDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewSchema(Column{Name: "a"}, Column{Name: "a"})
}

func TestSchemaEmptyNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewSchema(Column{Name: ""})
}

func TestSchemaBoundedColumns(t *testing.T) {
	s := testSchema()
	got := s.BoundedColumns()
	want := []int{2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("BoundedColumns = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("BoundedColumns = %v, want %v", got, want)
		}
	}
}

func TestSchemaColumnNames(t *testing.T) {
	names := testSchema().ColumnNames()
	if names[0] != "from" || names[4] != "traffic" {
		t.Errorf("ColumnNames = %v", names)
	}
}

func TestKindString(t *testing.T) {
	if Exact.String() != "exact" || Bounded.String() != "bounded" {
		t.Error("Kind.String wrong")
	}
}
