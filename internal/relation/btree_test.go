package relation

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestBTreeInsertAscend(t *testing.T) {
	bt := NewBTree(2)
	keys := []float64{5, 1, 9, 3, 7, 2, 8, 4, 6, 0}
	for i, k := range keys {
		bt.Insert(k, int64(i))
	}
	if bt.Len() != len(keys) {
		t.Fatalf("Len = %d", bt.Len())
	}
	var got []float64
	bt.Ascend(func(k float64, _ int64) bool {
		got = append(got, k)
		return true
	})
	if !sort.Float64sAreSorted(got) {
		t.Fatalf("not sorted: %v", got)
	}
	if len(got) != len(keys) {
		t.Fatalf("ascend visited %d entries", len(got))
	}
}

func TestBTreeMinMax(t *testing.T) {
	bt := NewBTree(3)
	if _, _, ok := bt.Min(); ok {
		t.Error("Min on empty ok")
	}
	for i := 0; i < 100; i++ {
		bt.Insert(float64((i*37)%100), int64(i))
	}
	if k, _, ok := bt.Min(); !ok || k != 0 {
		t.Errorf("Min = %g, %v", k, ok)
	}
	if k, _, ok := bt.Max(); !ok || k != 99 {
		t.Errorf("Max = %g, %v", k, ok)
	}
}

func TestBTreeDelete(t *testing.T) {
	bt := NewBTree(2)
	for i := 0; i < 50; i++ {
		bt.Insert(float64(i), int64(i))
	}
	for i := 0; i < 50; i += 2 {
		if !bt.Delete(float64(i), int64(i)) {
			t.Fatalf("Delete(%d) failed", i)
		}
	}
	if bt.Len() != 25 {
		t.Fatalf("Len after deletes = %d", bt.Len())
	}
	if bt.Delete(0, 0) {
		t.Error("deleting absent entry reported true")
	}
	var got []float64
	bt.Ascend(func(k float64, _ int64) bool { got = append(got, k); return true })
	for _, k := range got {
		if int(k)%2 == 0 {
			t.Fatalf("even key %g survived", k)
		}
	}
}

func TestBTreeDuplicateKeys(t *testing.T) {
	bt := NewBTree(2)
	bt.Insert(5, 1)
	bt.Insert(5, 2)
	bt.Insert(5, 3)
	if bt.Len() != 3 {
		t.Fatalf("Len = %d", bt.Len())
	}
	if !bt.Delete(5, 2) {
		t.Fatal("Delete(5, 2) failed")
	}
	var ids []int64
	bt.Ascend(func(_ float64, id int64) bool { ids = append(ids, id); return true })
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 3 {
		t.Fatalf("ids = %v", ids)
	}
}

func TestBTreeAscendLess(t *testing.T) {
	bt := NewBTree(4)
	for i := 0; i < 20; i++ {
		bt.Insert(float64(i), int64(i))
	}
	var got []float64
	bt.AscendLess(7, func(k float64, _ int64) bool { got = append(got, k); return true })
	if len(got) != 7 || got[6] != 6 {
		t.Fatalf("AscendLess(7) = %v", got)
	}
	// Early stop.
	count := 0
	bt.AscendLess(100, func(_ float64, _ int64) bool { count++; return count < 3 })
	if count != 3 {
		t.Errorf("early stop visited %d", count)
	}
}

func TestBTreeDescendGreater(t *testing.T) {
	bt := NewBTree(4)
	for i := 0; i < 20; i++ {
		bt.Insert(float64(i), int64(i))
	}
	var got []float64
	bt.DescendGreater(15, func(k float64, _ int64) bool { got = append(got, k); return true })
	want := []float64{19, 18, 17, 16}
	if len(got) != len(want) {
		t.Fatalf("DescendGreater(15) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("DescendGreater(15) = %v, want %v", got, want)
		}
	}
}

func TestBTreeDegreeFloor(t *testing.T) {
	bt := NewBTree(0) // raised to 2
	for i := 0; i < 100; i++ {
		bt.Insert(float64(i), int64(i))
	}
	if bt.Len() != 100 {
		t.Fatal("degree floor broken")
	}
}

// TestQuickBTreeMatchesSortedSlice runs random insert/delete workloads and
// compares the tree's iteration order with a reference sorted slice.
func TestQuickBTreeMatchesReference(t *testing.T) {
	type entry struct {
		k  float64
		id int64
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		bt := NewBTree(2 + r.Intn(4))
		var ref []entry
		for op := 0; op < 300; op++ {
			if r.Intn(3) > 0 || len(ref) == 0 { // 2/3 inserts
				e := entry{k: float64(r.Intn(40)), id: int64(r.Intn(1000))}
				bt.Insert(e.k, e.id)
				ref = append(ref, e)
			} else {
				i := r.Intn(len(ref))
				e := ref[i]
				if !bt.Delete(e.k, e.id) {
					return false
				}
				ref = append(ref[:i], ref[i+1:]...)
			}
		}
		if bt.Len() != len(ref) {
			return false
		}
		sort.Slice(ref, func(a, b int) bool {
			if ref[a].k != ref[b].k {
				return ref[a].k < ref[b].k
			}
			return ref[a].id < ref[b].id
		})
		i := 0
		okAll := true
		bt.Ascend(func(k float64, id int64) bool {
			if i >= len(ref) || ref[i].k != k || ref[i].id != id {
				okAll = false
				return false
			}
			i++
			return true
		})
		return okAll && i == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
