package relation

// BTree is an in-memory B-tree mapping float64 keys to tuple keys, used to
// index bound endpoints (lower bounds, upper bounds, widths) and refresh
// costs. The paper's CHOOSE_REFRESH algorithms for MIN/MAX/COUNT achieve
// sublinear running time given B-tree indexes on these quantities
// (sections 5.1, 6.3, 8.3); this implementation provides the same
// asymptotics for the simulated cache.
//
// Duplicate float keys are permitted; entries are ordered by (key, id) so
// iteration is deterministic.
type BTree struct {
	root   *btreeNode
	degree int
	size   int
}

// btreeEntry is one (key, id) pair.
type btreeEntry struct {
	key float64
	id  int64
}

// less orders entries by key then id.
func (e btreeEntry) less(o btreeEntry) bool {
	if e.key != o.key {
		return e.key < o.key
	}
	return e.id < o.id
}

type btreeNode struct {
	entries  []btreeEntry
	children []*btreeNode // nil for leaves
}

func (n *btreeNode) leaf() bool { return n.children == nil }

// NewBTree returns an empty B-tree with the given minimum degree t (each
// node except the root holds between t−1 and 2t−1 entries). Degree < 2 is
// raised to 2.
func NewBTree(degree int) *BTree {
	if degree < 2 {
		degree = 2
	}
	return &BTree{degree: degree}
}

// Len returns the number of entries.
func (t *BTree) Len() int { return t.size }

// maxEntries is 2t−1.
func (t *BTree) maxEntries() int { return 2*t.degree - 1 }

// minEntries is t−1.
func (t *BTree) minEntries() int { return t.degree - 1 }

// Insert adds the (key, id) pair. Duplicates of the exact pair are allowed
// and stored separately; callers that need set semantics should Delete
// before Insert.
func (t *BTree) Insert(key float64, id int64) {
	e := btreeEntry{key, id}
	if t.root == nil {
		t.root = &btreeNode{entries: []btreeEntry{e}}
		t.size = 1
		return
	}
	if len(t.root.entries) == t.maxEntries() {
		old := t.root
		t.root = &btreeNode{children: []*btreeNode{old}}
		t.splitChild(t.root, 0)
	}
	t.insertNonFull(t.root, e)
	t.size++
}

// splitChild splits the full i'th child of parent around its median entry.
func (t *BTree) splitChild(parent *btreeNode, i int) {
	child := parent.children[i]
	mid := t.degree - 1
	median := child.entries[mid]

	right := &btreeNode{entries: append([]btreeEntry(nil), child.entries[mid+1:]...)}
	if !child.leaf() {
		right.children = append([]*btreeNode(nil), child.children[mid+1:]...)
		child.children = child.children[:mid+1]
	}
	child.entries = child.entries[:mid]

	parent.entries = append(parent.entries, btreeEntry{})
	copy(parent.entries[i+1:], parent.entries[i:])
	parent.entries[i] = median

	parent.children = append(parent.children, nil)
	copy(parent.children[i+2:], parent.children[i+1:])
	parent.children[i+1] = right
}

func (t *BTree) insertNonFull(n *btreeNode, e btreeEntry) {
	for {
		i := n.lowerBound(e)
		if n.leaf() {
			n.entries = append(n.entries, btreeEntry{})
			copy(n.entries[i+1:], n.entries[i:])
			n.entries[i] = e
			return
		}
		if len(n.children[i].entries) == t.maxEntries() {
			t.splitChild(n, i)
			if n.entries[i].less(e) {
				i++
			}
		}
		n = n.children[i]
	}
}

// lowerBound returns the first index whose entry is not less than e.
func (n *btreeNode) lowerBound(e btreeEntry) int {
	lo, hi := 0, len(n.entries)
	for lo < hi {
		mid := (lo + hi) / 2
		if n.entries[mid].less(e) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Delete removes one occurrence of the (key, id) pair, reporting whether it
// was present.
func (t *BTree) Delete(key float64, id int64) bool {
	if t.root == nil {
		return false
	}
	ok := t.delete(t.root, btreeEntry{key, id})
	if ok {
		t.size--
	}
	if len(t.root.entries) == 0 {
		if t.root.leaf() {
			t.root = nil
		} else {
			t.root = t.root.children[0]
		}
	}
	return ok
}

func (t *BTree) delete(n *btreeNode, e btreeEntry) bool {
	i := n.lowerBound(e)
	found := i < len(n.entries) && !e.less(n.entries[i]) // entries[i] == e
	if n.leaf() {
		if !found {
			return false
		}
		n.entries = append(n.entries[:i], n.entries[i+1:]...)
		return true
	}
	if found {
		// Replace with predecessor or successor, or merge.
		if len(n.children[i].entries) > t.minEntries() {
			pred := t.maxEntry(n.children[i])
			n.entries[i] = pred
			return t.delete(n.children[i], pred)
		}
		if len(n.children[i+1].entries) > t.minEntries() {
			succ := t.minEntry(n.children[i+1])
			n.entries[i] = succ
			return t.delete(n.children[i+1], succ)
		}
		t.merge(n, i)
		return t.delete(n.children[i], e)
	}
	// Descend, refilling the child first if it is minimal.
	if len(n.children[i].entries) == t.minEntries() {
		t.fill(n, i)
		// fill may have merged children; recompute the branch.
		i = n.lowerBound(e)
		if i < len(n.entries) && !e.less(n.entries[i]) {
			return t.delete(n, e)
		}
		if i >= len(n.children) {
			i = len(n.children) - 1
		}
	}
	return t.delete(n.children[i], e)
}

func (t *BTree) maxEntry(n *btreeNode) btreeEntry {
	for !n.leaf() {
		n = n.children[len(n.children)-1]
	}
	return n.entries[len(n.entries)-1]
}

func (t *BTree) minEntry(n *btreeNode) btreeEntry {
	for !n.leaf() {
		n = n.children[0]
	}
	return n.entries[0]
}

// fill ensures child i of n has more than minEntries entries, borrowing
// from a sibling or merging.
func (t *BTree) fill(n *btreeNode, i int) {
	if i > 0 && len(n.children[i-1].entries) > t.minEntries() {
		t.borrowFromLeft(n, i)
		return
	}
	if i < len(n.children)-1 && len(n.children[i+1].entries) > t.minEntries() {
		t.borrowFromRight(n, i)
		return
	}
	if i == len(n.children)-1 {
		t.merge(n, i-1)
	} else {
		t.merge(n, i)
	}
}

func (t *BTree) borrowFromLeft(n *btreeNode, i int) {
	child, left := n.children[i], n.children[i-1]
	child.entries = append([]btreeEntry{n.entries[i-1]}, child.entries...)
	n.entries[i-1] = left.entries[len(left.entries)-1]
	left.entries = left.entries[:len(left.entries)-1]
	if !left.leaf() {
		child.children = append([]*btreeNode{left.children[len(left.children)-1]}, child.children...)
		left.children = left.children[:len(left.children)-1]
	}
}

func (t *BTree) borrowFromRight(n *btreeNode, i int) {
	child, right := n.children[i], n.children[i+1]
	child.entries = append(child.entries, n.entries[i])
	n.entries[i] = right.entries[0]
	right.entries = append(right.entries[:0], right.entries[1:]...)
	if !right.leaf() {
		child.children = append(child.children, right.children[0])
		right.children = append(right.children[:0], right.children[1:]...)
	}
}

// merge folds entry i of n and child i+1 into child i.
func (t *BTree) merge(n *btreeNode, i int) {
	child, right := n.children[i], n.children[i+1]
	child.entries = append(child.entries, n.entries[i])
	child.entries = append(child.entries, right.entries...)
	if !child.leaf() {
		child.children = append(child.children, right.children...)
	}
	n.entries = append(n.entries[:i], n.entries[i+1:]...)
	n.children = append(n.children[:i+1], n.children[i+2:]...)
}

// Min returns the smallest key and its id; ok is false when empty. This is
// the sublinear "find min_k(H_k)" primitive used by CHOOSE_REFRESH for MIN.
func (t *BTree) Min() (key float64, id int64, ok bool) {
	if t.root == nil {
		return 0, 0, false
	}
	e := t.minEntry(t.root)
	return e.key, e.id, true
}

// Max returns the largest key and its id; ok is false when empty.
func (t *BTree) Max() (key float64, id int64, ok bool) {
	if t.root == nil {
		return 0, 0, false
	}
	e := t.maxEntry(t.root)
	return e.key, e.id, true
}

// AscendLess calls fn for each entry with key < pivot in ascending order,
// stopping early if fn returns false. This is the sublinear "all tuples
// with L_i < threshold" scan used by CHOOSE_REFRESH for MIN.
func (t *BTree) AscendLess(pivot float64, fn func(key float64, id int64) bool) {
	t.ascend(t.root, func(e btreeEntry) bool {
		if e.key >= pivot {
			return false
		}
		return fn(e.key, e.id)
	})
}

// DescendGreater calls fn for each entry with key > pivot in descending
// order, stopping early if fn returns false — the MAX counterpart.
func (t *BTree) DescendGreater(pivot float64, fn func(key float64, id int64) bool) {
	t.descend(t.root, func(e btreeEntry) bool {
		if e.key <= pivot {
			return false
		}
		return fn(e.key, e.id)
	})
}

// Ascend calls fn for every entry in ascending order, stopping early if fn
// returns false. Used to take the k cheapest tuples for COUNT refresh.
func (t *BTree) Ascend(fn func(key float64, id int64) bool) {
	t.ascend(t.root, func(e btreeEntry) bool { return fn(e.key, e.id) })
}

func (t *BTree) ascend(n *btreeNode, fn func(btreeEntry) bool) bool {
	if n == nil {
		return true
	}
	for i, e := range n.entries {
		if !n.leaf() && !t.ascend(n.children[i], fn) {
			return false
		}
		if !fn(e) {
			return false
		}
	}
	if !n.leaf() {
		return t.ascend(n.children[len(n.children)-1], fn)
	}
	return true
}

func (t *BTree) descend(n *btreeNode, fn func(btreeEntry) bool) bool {
	if n == nil {
		return true
	}
	if !n.leaf() {
		if !t.descend(n.children[len(n.children)-1], fn) {
			return false
		}
	}
	for i := len(n.entries) - 1; i >= 0; i-- {
		if !fn(n.entries[i]) {
			return false
		}
		if !n.leaf() && !t.descend(n.children[i], fn) {
			return false
		}
	}
	return true
}
