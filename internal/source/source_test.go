package source

import (
	"testing"

	"trapp/internal/boundfn"
	"trapp/internal/netsim"
)

// recorder is a Subscriber that remembers refreshes.
type recorder struct {
	refreshes []Refresh
}

func (r *recorder) ApplyRefresh(ref Refresh) { r.refreshes = append(r.refreshes, ref) }

func newTestSource(t *testing.T) (*Source, *netsim.Clock, *netsim.Network) {
	t.Helper()
	clock := netsim.NewClock()
	net := netsim.NewNetwork()
	s := New("s1", clock, net, nil)
	if err := s.AddObject(1, []float64{10, 100}, 3, boundfn.StaticWidth(2)); err != nil {
		t.Fatal(err)
	}
	return s, clock, net
}

func TestAddObjectValidation(t *testing.T) {
	s, _, _ := newTestSource(t)
	if err := s.AddObject(1, []float64{1}, 1, nil); err == nil {
		t.Error("duplicate object accepted")
	}
	if err := s.AddObject(2, []float64{1}, -1, nil); err == nil {
		t.Error("negative cost accepted")
	}
	if s.ID() != "s1" {
		t.Errorf("ID = %q", s.ID())
	}
}

func TestCostAndValues(t *testing.T) {
	s, _, _ := newTestSource(t)
	if c, ok := s.Cost(1); !ok || c != 3 {
		t.Errorf("Cost = %g, %v", c, ok)
	}
	if _, ok := s.Cost(9); ok {
		t.Error("Cost(9) found")
	}
	v, ok := s.Values(1)
	if !ok || v[0] != 10 || v[1] != 100 {
		t.Errorf("Values = %v, %v", v, ok)
	}
	v[0] = -1 // returned slice must be a copy
	v2, _ := s.Values(1)
	if v2[0] != 10 {
		t.Error("Values returned shared slice")
	}
}

func TestSubscribeInitialRefresh(t *testing.T) {
	s, clock, _ := newTestSource(t)
	rec := &recorder{}
	r, err := s.Subscribe(1, rec)
	if err != nil {
		t.Fatal(err)
	}
	if r.Key != 1 || r.SourceID != "s1" {
		t.Errorf("refresh = %+v", r)
	}
	if len(r.Values) != 2 || r.Values[0] != 10 {
		t.Errorf("values = %v", r.Values)
	}
	// At refresh time the bound is a point at the value.
	if b := r.Bounds[0].At(clock.Now()); !b.IsPoint() || b.Lo != 10 {
		t.Errorf("initial bound = %v", b)
	}
	if _, err := s.Subscribe(9, rec); err == nil {
		t.Error("Subscribe to missing object accepted")
	}
}

func TestValueInitiatedRefreshFiresOnEscape(t *testing.T) {
	s, clock, net := newTestSource(t)
	rec := &recorder{}
	if _, err := s.Subscribe(1, rec); err != nil {
		t.Fatal(err)
	}
	clock.Advance(4) // width 2, sqrt(4)=2 → bound ±4 around 10: [6, 14]
	// Move value inside the bound: no refresh.
	if err := s.SetValue(1, []float64{13, 100}); err != nil {
		t.Fatal(err)
	}
	if len(rec.refreshes) != 0 {
		t.Fatalf("in-bound update triggered %d refreshes", len(rec.refreshes))
	}
	// Move outside: refresh must fire.
	if err := s.SetValue(1, []float64{20, 100}); err != nil {
		t.Fatal(err)
	}
	if len(rec.refreshes) != 1 {
		t.Fatalf("escape triggered %d refreshes, want 1", len(rec.refreshes))
	}
	r := rec.refreshes[0]
	if r.Kind != ValueInitiated {
		t.Errorf("kind = %v", r.Kind)
	}
	if r.Values[0] != 20 {
		t.Errorf("refresh values = %v", r.Values)
	}
	if net.Stats().Messages[netsim.ValueRefresh] != 1 {
		t.Error("network did not record value refresh")
	}
}

func TestQueryRefresh(t *testing.T) {
	s, _, net := newTestSource(t)
	rec := &recorder{}
	if _, err := s.Subscribe(1, rec); err != nil {
		t.Fatal(err)
	}
	r, err := s.QueryRefresh(1, rec)
	if err != nil {
		t.Fatal(err)
	}
	if r.Kind != QueryInitiated {
		t.Errorf("kind = %v", r.Kind)
	}
	if net.Stats().QueryRefreshCost != 3 {
		t.Errorf("query refresh cost = %g, want 3", net.Stats().QueryRefreshCost)
	}
	// Unsubscribed caller is rejected.
	if _, err := s.QueryRefresh(1, &recorder{}); err == nil {
		t.Error("unsubscribed QueryRefresh accepted")
	}
	if _, err := s.QueryRefresh(9, rec); err == nil {
		t.Error("QueryRefresh for missing object accepted")
	}
}

func TestQueryRefreshBatch(t *testing.T) {
	s, _, net := newTestSource(t)
	if err := s.AddObject(2, []float64{20, 200}, 5, boundfn.StaticWidth(2)); err != nil {
		t.Fatal(err)
	}
	if err := s.AddObject(3, []float64{30, 300}, 7, boundfn.StaticWidth(2)); err != nil {
		t.Fatal(err)
	}
	rec := &recorder{}
	for _, key := range []int64{1, 2, 3} {
		if _, err := s.Subscribe(key, rec); err != nil {
			t.Fatal(err)
		}
	}
	rs, err := s.QueryRefreshBatch([]int64{1, 3}, rec)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("batch returned %d refreshes, want 2", len(rs))
	}
	if rs[0].Key != 1 || rs[1].Key != 3 {
		t.Errorf("batch keys = %d, %d; want request order 1, 3", rs[0].Key, rs[1].Key)
	}
	for _, r := range rs {
		if r.Kind != QueryInitiated {
			t.Errorf("key %d kind = %v", r.Key, r.Kind)
		}
	}
	if rs[1].Values[0] != 30 {
		t.Errorf("key 3 values = %v", rs[1].Values)
	}
	st := net.Stats()
	if st.Messages[netsim.QueryRefresh] != 2 {
		t.Errorf("query-refresh messages = %d, want 2", st.Messages[netsim.QueryRefresh])
	}
	if st.QueryRefreshCost != 3+7 {
		t.Errorf("query refresh cost = %g, want 10", st.QueryRefreshCost)
	}
	// Errors reject the whole batch without charging.
	if _, err := s.QueryRefreshBatch([]int64{1, 9}, rec); err == nil {
		t.Error("batch with missing object accepted")
	}
	if _, err := s.QueryRefreshBatch([]int64{2}, &recorder{}); err == nil {
		t.Error("batch from unsubscribed cache accepted")
	}
	if rs, err := s.QueryRefreshBatch(nil, rec); err != nil || rs != nil {
		t.Errorf("empty batch = %v, %v", rs, err)
	}
}

func TestAdaptiveWidthReactsToRefreshKinds(t *testing.T) {
	clock := netsim.NewClock()
	net := netsim.NewNetwork()
	s := New("s1", clock, net, nil)
	pol := boundfn.NewAdaptiveWidth(2)
	if err := s.AddObject(1, []float64{10}, 1, pol); err != nil {
		t.Fatal(err)
	}
	rec := &recorder{}
	if _, err := s.Subscribe(1, rec); err != nil {
		t.Fatal(err)
	}
	// Query refresh narrows.
	if _, err := s.QueryRefresh(1, rec); err != nil {
		t.Fatal(err)
	}
	v, q := pol.Counts()
	if v != 0 || q != 1 {
		t.Errorf("counts after query refresh = (%d, %d)", v, q)
	}
	// Escape widens: advance a little then jump far outside.
	clock.Advance(1)
	if err := s.SetValue(1, []float64{1e6}); err != nil {
		t.Fatal(err)
	}
	v, q = pol.Counts()
	if v != 1 {
		t.Errorf("value refresh count = %d", v)
	}
}

func TestCheckBoundsSweep(t *testing.T) {
	s, clock, _ := newTestSource(t)
	rec := &recorder{}
	if _, err := s.Subscribe(1, rec); err != nil {
		t.Fatal(err)
	}
	if n := s.CheckBounds(); n != 0 {
		t.Errorf("sweep with fresh bounds pushed %d", n)
	}
	// Mutate master value directly via SetValue at time 0 (bound is a
	// point at 10, so 11 escapes), but temporarily silence pushes by
	// advancing the clock after a wide refresh instead: simpler — at
	// t=0 the bound is the point [10,10]; setting 11 escapes and pushes.
	clock.Advance(0)
	if err := s.SetValue(1, []float64{11, 100}); err != nil {
		t.Fatal(err)
	}
	if len(rec.refreshes) != 1 {
		t.Fatalf("point-bound escape pushed %d refreshes", len(rec.refreshes))
	}
	// After the push the bounds are fresh again; a sweep is a no-op.
	if n := s.CheckBounds(); n != 0 {
		t.Errorf("post-refresh sweep pushed %d", n)
	}
}

func TestRefreshKindString(t *testing.T) {
	if ValueInitiated.String() != "value-initiated" || QueryInitiated.String() != "query-initiated" {
		t.Error("RefreshKind strings")
	}
}
