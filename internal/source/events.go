package source

import (
	"fmt"

	"trapp/internal/boundfn"
	"trapp/internal/netsim"
)

// Delayed propagation of insertions and deletions (paper section 8.3).
//
// The core architecture propagates object insertions and deletions to
// caches immediately, which is why COUNT without a predicate needs no
// refreshes (section 5.3). Section 8.3 proposes relaxing this: the source
// may delay propagation as long as the number of unpropagated events is
// bounded, and COUNT answers account for the bounded discrepancy. This
// file implements that relaxation: a source configured with a propagation
// slack k queues insert/delete events and flushes them to its watchers
// whenever the queue reaches k (or on demand); watchers learn k so their
// cardinality-sensitive answers can widen by ±pending events.
//
// Aggregates other than COUNT cannot soundly tolerate missing tuples
// (an unpropagated insert contributes an unknown value), so query
// processors flush before evaluating them — see trapp.System.Execute.

// TableEvent is one deferred insertion or deletion.
type TableEvent struct {
	// Insert distinguishes insertions from deletions.
	Insert bool
	// Key identifies the object.
	Key int64
	// Meta carries cache-side exact column values for insertions (e.g.
	// link endpoints), in schema order of the cache's exact columns.
	Meta []float64
}

// Watcher observes a source's table membership. Caches implement it.
type Watcher interface {
	// OnTableEvent applies a propagated insertion or deletion. For
	// insertions the watcher is expected to Subscribe to the new object.
	OnTableEvent(src *Source, ev TableEvent)
}

// Watch registers a watcher for membership events and returns the current
// propagation slack so the watcher can widen cardinality answers.
func (s *Source) Watch(w Watcher) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.watchers = append(s.watchers, w)
	return s.slack
}

// SetPropagationSlack configures the maximum number of unpropagated
// events; 0 (the default) restores immediate propagation and flushes any
// queue.
func (s *Source) SetPropagationSlack(k int) {
	s.mu.Lock()
	if k < 0 {
		k = 0
	}
	s.slack = k
	var flush []TableEvent
	if len(s.pending) >= s.slack && len(s.pending) > 0 {
		flush = s.takePendingLocked()
	}
	watchers := append([]Watcher(nil), s.watchers...)
	s.mu.Unlock()
	deliver(s, watchers, flush)
}

// Pending returns the number of queued, unpropagated events.
func (s *Source) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pending)
}

// Slack returns the configured propagation slack bound.
func (s *Source) Slack() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.slack
}

// InsertObject adds a new master object and propagates (or queues) the
// insertion event. meta is forwarded to watchers for their exact columns.
func (s *Source) InsertObject(key int64, values []float64, cost float64, policy boundfn.WidthPolicy, meta []float64) error {
	if err := s.AddObject(key, values, cost, policy); err != nil {
		return err
	}
	s.enqueue(TableEvent{Insert: true, Key: key, Meta: append([]float64(nil), meta...)})
	return nil
}

// RemoveObject deletes a master object and propagates (or queues) the
// deletion event. Registrations for the object are dropped.
func (s *Source) RemoveObject(key int64) error {
	s.mu.Lock()
	if _, ok := s.objects[key]; !ok {
		s.mu.Unlock()
		return fmt.Errorf("source %s: no object %d", s.id, key)
	}
	delete(s.objects, key)
	delete(s.regs, key)
	s.mu.Unlock()
	s.enqueue(TableEvent{Insert: false, Key: key})
	return nil
}

// enqueue queues the event and flushes if the slack is exhausted (or
// immediate propagation is configured).
func (s *Source) enqueue(ev TableEvent) {
	s.mu.Lock()
	s.pending = append(s.pending, ev)
	var flush []TableEvent
	if len(s.pending) > s.slack || s.slack == 0 {
		flush = s.takePendingLocked()
	}
	watchers := append([]Watcher(nil), s.watchers...)
	s.mu.Unlock()
	deliver(s, watchers, flush)
}

// FlushEvents propagates all queued events immediately, e.g. before a
// query that cannot tolerate cardinality slack.
func (s *Source) FlushEvents() {
	s.mu.Lock()
	flush := s.takePendingLocked()
	watchers := append([]Watcher(nil), s.watchers...)
	s.mu.Unlock()
	deliver(s, watchers, flush)
}

// takePendingLocked drains the queue. Caller holds s.mu.
func (s *Source) takePendingLocked() []TableEvent {
	out := s.pending
	s.pending = nil
	return out
}

// deliver sends events to watchers outside the source lock, one
// propagation message per event per watcher.
func deliver(s *Source, watchers []Watcher, events []TableEvent) {
	for _, ev := range events {
		for _, w := range watchers {
			s.net.SendFrom(s.id, netsim.Propagation, 1, 0)
			w.OnTableEvent(s, ev)
		}
	}
}
