// Package source implements the data-source side of the TRAPP architecture
// (paper section 3, Figure 3): each source owns the master copy of its data
// objects and runs a Refresh Monitor that tracks the bound it has promised
// to every subscribed cache. When an update moves a master value outside a
// promised bound, the source immediately pushes a value-initiated refresh;
// when a cache's query processor needs an exact value, it pulls a
// query-initiated refresh.
//
// Bounds are transmitted in the compressed two-number encoding of
// Appendix A — the refreshed value V(Tr) and the width parameter W — with
// the shape function agreed out of band (√T by default). Each object's
// width parameter is governed by a boundfn.WidthPolicy; the adaptive policy
// widens bounds after value-initiated refreshes and narrows them after
// query-initiated ones.
package source

import (
	"context"
	"fmt"
	"sync"

	"trapp/internal/boundfn"
	"trapp/internal/netsim"
	"trapp/internal/obs"
)

// RefreshKind distinguishes why a refresh was sent.
type RefreshKind int8

const (
	// ValueInitiated refreshes fire when a master value escapes a bound.
	ValueInitiated RefreshKind = iota
	// QueryInitiated refreshes are pulled by a cache's query processor.
	QueryInitiated
)

// String names the refresh kind.
func (k RefreshKind) String() string {
	if k == ValueInitiated {
		return "value-initiated"
	}
	return "query-initiated"
}

// Refresh is the message a source sends to a cache: the exact values of
// the object's bounded attributes along with new bound functions.
type Refresh struct {
	// SourceID names the sending source.
	SourceID string
	// Key identifies the data object.
	Key int64
	// Values are the exact attribute values at refresh time, in the
	// object's attribute order.
	Values []float64
	// Bounds are the new time-varying bound functions, one per attribute.
	Bounds []boundfn.Bound
	// Kind reports why the refresh was sent.
	Kind RefreshKind
	// Seq orders refreshes of one object: sources stamp each refresh
	// with a per-object counter under their lock, so a cache receiving
	// refreshes on different goroutines can drop one that was generated
	// before an already-applied newer one. Zero means unordered (tests
	// building Refresh values by hand).
	Seq int64
}

// Subscriber receives pushed refreshes (value-initiated) from a source.
type Subscriber interface {
	// ApplyRefresh installs new bounds for the object. Implementations
	// must not call back into the source.
	ApplyRefresh(r Refresh)
}

// object is one master data object.
type object struct {
	values []float64 // master attribute values
	cost   float64   // query-initiated refresh cost C_i
	policy boundfn.WidthPolicy
	seq    int64 // refresh generation counter; see Refresh.Seq
}

// registration tracks the bound promised to one cache for one object.
type registration struct {
	sub    Subscriber
	bounds []boundfn.Bound
}

// Source owns master values and runs the refresh monitor. All methods are
// safe for concurrent use.
type Source struct {
	id    string
	clock *netsim.Clock
	net   *netsim.Network
	shape boundfn.Shape

	mu        sync.Mutex
	objects   map[int64]*object
	regs      map[int64][]*registration
	piggyback float64 // see EnablePiggyback

	// Delayed insert/delete propagation (section 8.3); see events.go.
	watchers []Watcher
	pending  []TableEvent
	slack    int
}

// New creates a source. clock and net must be shared with the caches;
// shape selects the transmitted bound shape (nil means √T).
func New(id string, clock *netsim.Clock, net *netsim.Network, shape boundfn.Shape) *Source {
	return &Source{
		id:      id,
		clock:   clock,
		net:     net,
		shape:   shape,
		objects: make(map[int64]*object),
		regs:    make(map[int64][]*registration),
	}
}

// ID returns the source identifier.
func (s *Source) ID() string { return s.id }

// AddObject registers a master object with its initial attribute values,
// query-refresh cost, and width policy (nil means a static width of 1).
func (s *Source) AddObject(key int64, values []float64, cost float64, policy boundfn.WidthPolicy) error {
	if cost < 0 {
		return fmt.Errorf("source %s: negative cost for object %d", s.id, key)
	}
	if policy == nil {
		policy = boundfn.StaticWidth(1)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.objects[key]; dup {
		return fmt.Errorf("source %s: duplicate object %d", s.id, key)
	}
	vals := make([]float64, len(values))
	copy(vals, values)
	s.objects[key] = &object{values: vals, cost: cost, policy: policy}
	return nil
}

// Cost returns the query-refresh cost of an object.
func (s *Source) Cost(key int64) (float64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	o, ok := s.objects[key]
	if !ok {
		return 0, false
	}
	return o.cost, true
}

// Values returns a copy of the object's current master values.
func (s *Source) Values(key int64) ([]float64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	o, ok := s.objects[key]
	if !ok {
		return nil, false
	}
	out := make([]float64, len(o.values))
	copy(out, o.values)
	return out, true
}

// Subscribe registers a cache for an object and returns the initial
// refresh carrying the current values and fresh bounds. The source
// remembers the promised bounds for its refresh monitor.
func (s *Source) Subscribe(key int64, sub Subscriber) (Refresh, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	o, ok := s.objects[key]
	if !ok {
		return Refresh{}, fmt.Errorf("source %s: no object %d", s.id, key)
	}
	s.net.SendFrom(s.id, netsim.Registration, 1, 0)
	reg := &registration{sub: sub}
	r := s.makeRefreshLocked(key, o, reg, QueryInitiated)
	r.Kind = ValueInitiated // initial push is not charged as a query refresh
	// Replace any prior registration for the same subscriber instead of
	// accumulating duplicates: a cache re-handshaking after recovery (or
	// retrying a racy subscribe) must end up with exactly one live
	// registration, or every future push would be delivered N times.
	replaced := false
	for i, old := range s.regs[key] {
		if old.sub == sub {
			s.regs[key][i] = reg
			replaced = true
			break
		}
	}
	if !replaced {
		s.regs[key] = append(s.regs[key], reg)
	}
	return r, nil
}

// makeRefreshLocked builds a refresh with fresh bounds for the object and
// records the promised bounds in the registration.
func (s *Source) makeRefreshLocked(key int64, o *object, reg *registration, kind RefreshKind) Refresh {
	now := s.clock.Now()
	w := o.policy.NextWidth()
	bounds := make([]boundfn.Bound, len(o.values))
	values := make([]float64, len(o.values))
	for i, v := range o.values {
		values[i] = v
		bounds[i] = boundfn.Bound{Value: v, Width: w, RefreshedAt: now, Shape: s.shape}
	}
	reg.bounds = bounds
	o.seq++
	return Refresh{SourceID: s.id, Key: key, Values: values, Bounds: bounds, Kind: kind, Seq: o.seq}
}

// SetValue updates one master object's attribute values (an "escrow style"
// update arriving at the source) and runs the refresh monitor: any cache
// whose promised bound no longer contains the new values receives an
// immediate value-initiated refresh, and the object's width policy is
// notified so the next bound is wider.
func (s *Source) SetValue(key int64, values []float64) error {
	s.mu.Lock()
	o, ok := s.objects[key]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("source %s: no object %d", s.id, key)
	}
	copy(o.values, values)
	now := s.clock.Now()
	type push struct {
		sub Subscriber
		r   Refresh
	}
	var pushes []push
	for _, reg := range s.regs[key] {
		if regContains(reg, now, o.values) {
			continue
		}
		// An escape at the tick the bound was promised (dt = 0, where every
		// shape yields a zero-width bound) says nothing about the width
		// parameter — any movement at all escapes a point. Push the refresh
		// but only feed the "too narrow" signal to the policy when time has
		// actually passed; otherwise rapid same-tick updates would double
		// the width without bound.
		if len(reg.bounds) == 0 || reg.bounds[0].RefreshedAt < now {
			o.policy.ObserveValueRefresh()
		}
		r := s.makeRefreshLocked(key, o, reg, ValueInitiated)
		s.net.SendFrom(s.id, netsim.ValueRefresh, 1, o.cost)
		pushes = append(pushes, push{reg.sub, r})
		// The message is going out anyway: ride along refreshes for this
		// cache's other near-edge objects (section 8.3).
		for _, extra := range s.piggybackRefreshesLocked(reg.sub, func(k int64) bool { return k == key }) {
			pushes = append(pushes, push{reg.sub, extra})
		}
	}
	s.mu.Unlock()
	// Deliver outside the lock so subscribers may inspect the source.
	for _, p := range pushes {
		p.sub.ApplyRefresh(p.r)
	}
	return nil
}

// regContains reports whether every promised bound still contains the
// corresponding master value at time now.
func regContains(reg *registration, now int64, values []float64) bool {
	if len(reg.bounds) != len(values) {
		return false
	}
	for i, b := range reg.bounds {
		if !b.Contains(now, values[i]) {
			return false
		}
	}
	return true
}

// QueryRefresh serves a query-initiated refresh pulled by a cache: it
// charges the object's cost, narrows the width policy, installs fresh
// bounds for that cache, and returns the exact values. If piggybacking is
// enabled, near-edge sibling objects of the same cache are pushed along
// with the reply at no extra cost.
func (s *Source) QueryRefresh(key int64, sub Subscriber) (Refresh, error) {
	rs, err := s.QueryRefreshBatch([]int64{key}, sub)
	if err != nil {
		return Refresh{}, err
	}
	// The batch reply lists requested refreshes first, piggybacked extras
	// after; deliver the extras and hand back the single requested one.
	for _, r := range rs[1:] {
		sub.ApplyRefresh(r)
	}
	return rs[0], nil
}

// QueryRefreshBatch serves query-initiated refreshes for a whole set of
// objects in one locked pass over the source — the batched request a
// cache's refresh fan-out sends once per source instead of one round
// trip per object. Every requested object is charged its cost and gets
// fresh bounds (Kind QueryInitiated); if piggybacking is enabled,
// near-edge sibling objects outside the batch ride along for free (Kind
// ValueInitiated). Requested refreshes precede extras in the reply, in
// request order. The caller applies the refreshes; this method does not
// call back into the subscriber.
func (s *Source) QueryRefreshBatch(keys []int64, sub Subscriber) ([]Refresh, error) {
	return s.QueryRefreshBatchCtx(context.Background(), keys, sub)
}

// QueryRefreshBatchCtx is QueryRefreshBatch honoring a context: the
// request first validates the batch, then waits out the network's
// simulated wire time with no lock held, and only then commits — charges
// the cost, narrows the width policies, and installs the fresh promised
// bounds — atomically under the source lock. A context canceled (or a
// deadline expired) during the wait aborts the request before anything
// is committed: no charge, no policy movement, no new promise, so the
// refresh monitor's soundness invariant (the source pushes whenever a
// value escapes its *promised* bound) is unaffected by abandoned
// requests.
func (s *Source) QueryRefreshBatchCtx(ctx context.Context, keys []int64, sub Subscriber) ([]Refresh, error) {
	if len(keys) == 0 {
		return nil, nil
	}
	// Phase 1: validate, so a bad batch fails before paying wire time —
	// skipped on the hot path (zero latency), where there is no wire
	// time to waste and the commit phase's own resolution rejects bad
	// batches before anything is charged.
	if s.net.Latency() > 0 {
		if err := s.validateBatch(keys, sub); err != nil {
			return nil, err
		}
	}
	// Phase 2: simulated wire time, interruptible, no lock held. A traced
	// request separates the time a batch sat on the wire from the time
	// committing it (the span in ctx is the per-source batch span).
	sp := obs.SpanFromContext(ctx)
	wireSp := sp.StartSpan("wire_wait")
	if err := s.net.Wait(ctx); err != nil {
		wireSp.End()
		return nil, err
	}
	wireSp.End()
	// Phase 3: re-resolve and commit atomically. Objects that vanished
	// during the wait fail the batch exactly as they would have failed
	// validation; nothing is charged on that path either.
	commitSp := sp.StartSpan("commit")
	s.mu.Lock()
	objs := make([]*object, len(keys))
	regs := make([]*registration, len(keys))
	for i, key := range keys {
		o, reg, err := s.resolveLocked(key, sub)
		if err != nil {
			s.mu.Unlock()
			commitSp.End()
			return nil, err
		}
		objs[i], regs[i] = o, reg
	}
	out := make([]Refresh, 0, len(keys))
	requested := make(map[int64]bool, len(keys))
	var batchCost float64
	for i, key := range keys {
		objs[i].policy.ObserveQueryRefresh()
		batchCost += objs[i].cost
		requested[key] = true
		out = append(out, s.makeRefreshLocked(key, objs[i], regs[i], QueryInitiated))
	}
	s.net.SendFrom(s.id, netsim.QueryRefresh, int64(len(keys)), batchCost)
	out = append(out, s.piggybackRefreshesLocked(sub, func(key int64) bool { return requested[key] })...)
	s.mu.Unlock()
	if commitSp != nil {
		commitSp.SetDetail("keys=%d cost=%g", len(keys), batchCost)
		commitSp.End()
	}
	return out, nil
}

// WidthTelemetry summarizes the adaptive-width controller state across
// the source's objects: how many objects run an adaptive policy, the
// spread of their current width parameter W, and the escape
// (value-initiated) vs shrink (query-initiated) refresh counts their
// controllers have observed. Objects on static policies count toward
// Objects only.
type WidthTelemetry struct {
	Objects        int     `json:"objects"`
	Adaptive       int     `json:"adaptive"`
	WMin           float64 `json:"w_min"`
	WMax           float64 `json:"w_max"`
	WMean          float64 `json:"w_mean"`
	ValueRefreshes int64   `json:"value_refreshes"`
	QueryRefreshes int64   `json:"query_refreshes"`
}

// WidthTelemetry aggregates the controller state under the source lock;
// it is a metrics-scrape helper, not a hot-path call.
func (s *Source) WidthTelemetry() WidthTelemetry {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := WidthTelemetry{Objects: len(s.objects)}
	var sum float64
	for _, o := range s.objects {
		aw, ok := o.policy.(*boundfn.AdaptiveWidth)
		if !ok {
			continue
		}
		if t.Adaptive == 0 || aw.W < t.WMin {
			t.WMin = aw.W
		}
		if t.Adaptive == 0 || aw.W > t.WMax {
			t.WMax = aw.W
		}
		t.Adaptive++
		sum += aw.W
		v, q := aw.Counts()
		t.ValueRefreshes += v
		t.QueryRefreshes += q
	}
	if t.Adaptive > 0 {
		t.WMean = sum / float64(t.Adaptive)
	}
	return t
}

// validateBatch checks every key exists and the subscriber is
// registered for it, without committing anything.
func (s *Source) validateBatch(keys []int64, sub Subscriber) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, key := range keys {
		if _, _, err := s.resolveLocked(key, sub); err != nil {
			return err
		}
	}
	return nil
}

// resolveLocked finds the object and the subscriber's registration for
// one key. Caller holds s.mu.
func (s *Source) resolveLocked(key int64, sub Subscriber) (*object, *registration, error) {
	o, ok := s.objects[key]
	if !ok {
		return nil, nil, fmt.Errorf("source %s: no object %d", s.id, key)
	}
	for _, r := range s.regs[key] {
		if r.sub == sub {
			return o, r, nil
		}
	}
	return nil, nil, fmt.Errorf("source %s: cache not subscribed to object %d", s.id, key)
}

// ObserveDemand forwards shared-refresh demand to the object's width
// policy: one paid query-initiated refresh of key just satisfied
// subscribers standing queries at once (see boundfn.DemandObserver).
// Policies that do not implement DemandObserver ignore the signal.
func (s *Source) ObserveDemand(key int64, subscribers int) {
	if subscribers < 2 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	o, ok := s.objects[key]
	if !ok {
		return
	}
	if d, ok := o.policy.(boundfn.DemandObserver); ok {
		d.ObserveDemand(subscribers)
	}
}

// CheckBounds runs the refresh monitor sweep at the current time without a
// value change: as time advances, √T bounds only widen, so this cannot
// fire for values already inside their bounds; it exists so simulations
// that mutate values in bulk (e.g. loading a trace) can reconcile, and it
// returns the number of refreshes pushed.
func (s *Source) CheckBounds() int {
	s.mu.Lock()
	now := s.clock.Now()
	type push struct {
		sub Subscriber
		r   Refresh
	}
	var pushes []push
	for key, regs := range s.regs {
		o := s.objects[key]
		for _, reg := range regs {
			if regContains(reg, now, o.values) {
				continue
			}
			o.policy.ObserveValueRefresh()
			r := s.makeRefreshLocked(key, o, reg, ValueInitiated)
			s.net.SendFrom(s.id, netsim.ValueRefresh, 1, o.cost)
			pushes = append(pushes, push{reg.sub, r})
		}
	}
	s.mu.Unlock()
	for _, p := range pushes {
		p.sub.ApplyRefresh(p.r)
	}
	return len(pushes)
}
