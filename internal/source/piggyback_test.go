package source

import (
	"testing"

	"trapp/internal/boundfn"
	"trapp/internal/netsim"
)

// pbSource builds a source with two objects whose bounds will be ±4 after
// 4 ticks (width 2, √4 = 2).
func pbSource(t *testing.T) (*Source, *recorder, *netsim.Clock, *netsim.Network) {
	t.Helper()
	clock := netsim.NewClock()
	net := netsim.NewNetwork()
	s := New("s", clock, net, nil)
	for key, v := range map[int64]float64{1: 10, 2: 50} {
		if err := s.AddObject(key, []float64{v}, 2, boundfn.StaticWidth(2)); err != nil {
			t.Fatal(err)
		}
	}
	rec := &recorder{}
	for _, key := range []int64{1, 2} {
		if _, err := s.Subscribe(key, rec); err != nil {
			t.Fatal(err)
		}
	}
	return s, rec, clock, net
}

func TestPiggybackOnValueRefresh(t *testing.T) {
	s, rec, clock, net := pbSource(t)
	s.EnablePiggyback(0.5)
	clock.Advance(4) // bounds: 10±4 and 50±4
	// Move object 2 near its bound edge (within 50% of half-width from
	// the edge): 53.5 is 0.5 from the edge 54, half-width 4 → qualifies.
	if err := s.SetValue(2, []float64{53.5}); err != nil {
		t.Fatal(err)
	}
	if len(rec.refreshes) != 0 {
		t.Fatalf("in-bound move pushed %d refreshes", len(rec.refreshes))
	}
	// Now object 1 escapes; its refresh should piggyback object 2.
	if err := s.SetValue(1, []float64{20}); err != nil {
		t.Fatal(err)
	}
	if len(rec.refreshes) != 2 {
		t.Fatalf("got %d refreshes, want main + piggyback", len(rec.refreshes))
	}
	keys := map[int64]bool{}
	for _, r := range rec.refreshes {
		keys[r.Key] = true
	}
	if !keys[1] || !keys[2] {
		t.Errorf("refreshed keys %v, want {1, 2}", keys)
	}
	if net.Stats().Messages[netsim.Propagation] != 1 {
		t.Errorf("piggyback messages = %d", net.Stats().Messages[netsim.Propagation])
	}
	// Piggybacked refresh carries the current value.
	for _, r := range rec.refreshes {
		if r.Key == 2 && r.Values[0] != 53.5 {
			t.Errorf("piggybacked value = %g", r.Values[0])
		}
	}
}

func TestPiggybackOnQueryRefresh(t *testing.T) {
	s, rec, clock, _ := pbSource(t)
	s.EnablePiggyback(0.5)
	clock.Advance(4)
	if err := s.SetValue(2, []float64{53.5}); err != nil {
		t.Fatal(err)
	}
	r, err := s.QueryRefresh(1, rec)
	if err != nil {
		t.Fatal(err)
	}
	if r.Key != 1 {
		t.Errorf("main refresh key %d", r.Key)
	}
	// The piggybacked sibling arrives via ApplyRefresh.
	if len(rec.refreshes) != 1 || rec.refreshes[0].Key != 2 {
		t.Fatalf("piggyback pushes = %+v", rec.refreshes)
	}
}

func TestPiggybackDisabledByDefault(t *testing.T) {
	s, rec, clock, _ := pbSource(t)
	clock.Advance(4)
	if err := s.SetValue(2, []float64{53.9}); err != nil {
		t.Fatal(err)
	}
	if err := s.SetValue(1, []float64{20}); err != nil {
		t.Fatal(err)
	}
	if len(rec.refreshes) != 1 {
		t.Fatalf("got %d refreshes, want 1 (no piggyback)", len(rec.refreshes))
	}
}

func TestPiggybackSkipsCentralValues(t *testing.T) {
	s, rec, clock, _ := pbSource(t)
	s.EnablePiggyback(0.25)
	clock.Advance(4)
	// Object 2 stays at its center (50): never near the edge.
	if err := s.SetValue(1, []float64{20}); err != nil {
		t.Fatal(err)
	}
	if len(rec.refreshes) != 1 {
		t.Fatalf("central value piggybacked: %+v", rec.refreshes)
	}
}

func TestPiggybackFractionClamped(t *testing.T) {
	s, _, _, _ := pbSource(t)
	s.EnablePiggyback(-1)
	if s.piggyback != 0 {
		t.Error("negative fraction not clamped")
	}
	s.EnablePiggyback(2)
	if s.piggyback != 1 {
		t.Error("fraction above 1 not clamped")
	}
}

func TestPiggybackFreshBoundsNeverQualify(t *testing.T) {
	s, rec, _, _ := pbSource(t)
	s.EnablePiggyback(1) // most aggressive
	// At t=0 all bounds are points (half-width 0): nothing qualifies.
	if err := s.SetValue(1, []float64{20}); err != nil {
		t.Fatal(err)
	}
	for _, r := range rec.refreshes {
		if r.Key == 2 {
			t.Error("fresh point bound piggybacked")
		}
	}
}
