package source

import (
	"trapp/internal/netsim"
)

// Piggybacking (paper section 8.3): when a refresh message is already
// being sent to a cache, the source may ride along ("piggyback") extra
// refreshes for other objects whose master values are close to the edge of
// the bound promised to that cache — values likely to escape soon and
// force a full-price refresh anyway. Piggybacked refreshes are recorded as
// netsim.Propagation messages with zero cost, modelling the amortization
// of sharing one network round.
//
// EnablePiggyback sets the proximity fraction f ∈ (0, 1]: an object rides
// along when the distance from its master value to the nearest promised
// bound endpoint is at most f times the bound's half-width. f = 0 (the
// default) disables piggybacking.
func (s *Source) EnablePiggyback(fraction float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if fraction < 0 {
		fraction = 0
	}
	if fraction > 1 {
		fraction = 1
	}
	s.piggyback = fraction
}

// piggybackRefreshesLocked collects extra refreshes for the subscriber:
// all of its other registered objects (excluded reports the ones already
// being refreshed) whose values are near a bound edge. Caller holds s.mu.
func (s *Source) piggybackRefreshesLocked(sub Subscriber, excluded func(int64) bool) []Refresh {
	if s.piggyback <= 0 {
		return nil
	}
	now := s.clock.Now()
	var out []Refresh
	for key, regs := range s.regs {
		if excluded(key) {
			continue
		}
		o := s.objects[key]
		for _, reg := range regs {
			if reg.sub != sub {
				continue
			}
			if !s.nearEdgeLocked(reg, now, o.values) {
				continue
			}
			r := s.makeRefreshLocked(key, o, reg, ValueInitiated)
			s.net.SendFrom(s.id, netsim.Propagation, 1, 0)
			out = append(out, r)
		}
	}
	return out
}

// nearEdgeLocked reports whether any attribute's master value is within
// the piggyback fraction of its promised bound edge. Zero-width (just
// refreshed) bounds never qualify.
func (s *Source) nearEdgeLocked(reg *registration, now int64, values []float64) bool {
	for i, b := range reg.bounds {
		iv := b.At(now)
		half := iv.Width() / 2
		if half <= 0 {
			continue
		}
		v := values[i]
		distToEdge := half - absFloat(v-iv.Mid())
		if distToEdge < 0 {
			distToEdge = 0 // already escaped; the monitor will catch it
		}
		if distToEdge <= s.piggyback*half {
			return true
		}
	}
	return false
}

func absFloat(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
