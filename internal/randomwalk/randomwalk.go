// Package randomwalk implements the update models that drive TRAPP
// simulation workloads. The paper's Appendix A motivates the √T bound
// shape by modelling data values as one-dimensional random walks — updates
// that increment or decrement the current value by small amounts ("escrow
// transactions"). This package provides that walk, a Gaussian-step
// variant, and a multiplicative (geometric) walk used to synthesize the
// volatile stock-price series of section 5.2.1.
//
// All generators are deterministic given their seed, so experiments are
// reproducible.
package randomwalk

import (
	"math"
	"math/rand"
)

// Walk is a one-dimensional random walk: at each step the value moves up
// or down by exactly the step size, matching the binomial model of
// Appendix A.
type Walk struct {
	value float64
	step  float64
	rng   *rand.Rand
}

// NewWalk returns a walk starting at start with the given step size.
func NewWalk(start, step float64, seed int64) *Walk {
	return &Walk{value: start, step: step, rng: rand.New(rand.NewSource(seed))}
}

// Value returns the current value.
func (w *Walk) Value() float64 { return w.value }

// Next advances one step and returns the new value.
func (w *Walk) Next() float64 {
	if w.rng.Intn(2) == 0 {
		w.value += w.step
	} else {
		w.value -= w.step
	}
	return w.value
}

// Steps advances n steps and returns the final value.
func (w *Walk) Steps(n int) float64 {
	for i := 0; i < n; i++ {
		w.Next()
	}
	return w.value
}

// Gaussian is a random walk with normally distributed steps, a smoother
// model for measured quantities such as link latency.
type Gaussian struct {
	value float64
	sigma float64
	min   float64
	rng   *rand.Rand
}

// NewGaussian returns a Gaussian walk starting at start with step standard
// deviation sigma; values are clamped below at min (e.g. latencies cannot
// go negative).
func NewGaussian(start, sigma, min float64, seed int64) *Gaussian {
	return &Gaussian{value: start, sigma: sigma, min: min, rng: rand.New(rand.NewSource(seed))}
}

// Value returns the current value.
func (g *Gaussian) Value() float64 { return g.value }

// Next advances one step and returns the new value.
func (g *Gaussian) Next() float64 {
	g.value += g.rng.NormFloat64() * g.sigma
	if g.value < g.min {
		g.value = g.min
	}
	return g.value
}

// Geometric is a multiplicative random walk: each step scales the value by
// exp(σ·N(0,1)), the standard discrete model for intraday stock prices.
type Geometric struct {
	value float64
	sigma float64
	rng   *rand.Rand
}

// NewGeometric returns a geometric walk starting at start with log-step
// volatility sigma.
func NewGeometric(start, sigma float64, seed int64) *Geometric {
	return &Geometric{value: start, sigma: sigma, rng: rand.New(rand.NewSource(seed))}
}

// Value returns the current value.
func (g *Geometric) Value() float64 { return g.value }

// Next advances one step and returns the new value.
func (g *Geometric) Next() float64 {
	g.value *= math.Exp(g.rng.NormFloat64() * g.sigma)
	return g.value
}

// Series runs a walk-like generator for n steps and returns all values
// including the start.
func Series(next func() float64, start float64, n int) []float64 {
	out := make([]float64, n+1)
	out[0] = start
	for i := 1; i <= n; i++ {
		out[i] = next()
	}
	return out
}

// Envelope returns the minimum and maximum of a series — the day-low and
// day-high of a simulated trading day.
func Envelope(series []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, v := range series {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	return lo, hi
}
