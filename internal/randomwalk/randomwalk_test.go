package randomwalk

import (
	"math"
	"testing"
)

func TestWalkDeterministic(t *testing.T) {
	a := NewWalk(10, 1, 5)
	b := NewWalk(10, 1, 5)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("walks diverge at step %d", i)
		}
	}
}

func TestWalkStepSize(t *testing.T) {
	w := NewWalk(0, 2.5, 1)
	prev := w.Value()
	for i := 0; i < 50; i++ {
		v := w.Next()
		if d := math.Abs(v - prev); d != 2.5 {
			t.Fatalf("step %d moved by %g, want 2.5", i, d)
		}
		prev = v
	}
}

func TestWalkSteps(t *testing.T) {
	w := NewWalk(0, 1, 7)
	v := w.Steps(10)
	if v != w.Value() {
		t.Error("Steps return differs from Value")
	}
	// After 10 unit steps parity of displacement is even.
	if math.Mod(math.Abs(v), 2) != 0 {
		t.Errorf("displacement %g has odd parity after 10 steps", v)
	}
}

func TestWalkVarianceGrowsLikeT(t *testing.T) {
	// Appendix A's premise: variance after T steps is s²·T. Estimate the
	// standard deviation over many walks at two horizons and verify
	// roughly √T scaling (factor 2 for 4× the steps, within 30%).
	const walks = 400
	sd := func(steps int) float64 {
		var sum, sumsq float64
		for i := 0; i < walks; i++ {
			w := NewWalk(0, 1, int64(1000+i))
			v := w.Steps(steps)
			sum += v
			sumsq += v * v
		}
		mean := sum / walks
		return math.Sqrt(sumsq/walks - mean*mean)
	}
	r := sd(400) / sd(100)
	if r < 1.4 || r > 2.6 {
		t.Errorf("sd ratio for 4x steps = %g, want ≈ 2", r)
	}
}

func TestGaussianClampsAtMin(t *testing.T) {
	g := NewGaussian(0.5, 10, 0, 3)
	for i := 0; i < 200; i++ {
		if v := g.Next(); v < 0 {
			t.Fatalf("value %g below min", v)
		}
	}
}

func TestGeometricStaysPositive(t *testing.T) {
	g := NewGeometric(100, 0.05, 11)
	for i := 0; i < 500; i++ {
		if v := g.Next(); v <= 0 {
			t.Fatalf("geometric walk hit %g", v)
		}
	}
}

func TestSeriesAndEnvelope(t *testing.T) {
	w := NewWalk(5, 1, 13)
	s := Series(w.Next, 5, 20)
	if len(s) != 21 || s[0] != 5 {
		t.Fatalf("series = %v", s)
	}
	lo, hi := Envelope(s)
	if lo > 5 || hi < 5 {
		t.Errorf("envelope [%g, %g] excludes start", lo, hi)
	}
	for _, v := range s {
		if v < lo || v > hi {
			t.Errorf("value %g outside envelope [%g, %g]", v, lo, hi)
		}
	}
}
