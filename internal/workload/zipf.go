package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Zipf samples ranks 0..n-1 with P(rank k) ∝ 1/(k+1)^s. Unlike
// math/rand's Zipf it accepts any skew s ≥ 0 — s = 0 is the uniform
// distribution, s ≈ 1 is classic web/object popularity, s > 1 puts most
// of the mass on a handful of hot ranks — which matters because the
// adversarial harness sweeps the skew across exactly that boundary.
// Sampling is by binary search over the precomputed CDF: O(n) setup,
// O(log n) per draw, deterministic for a fixed rng stream.
type Zipf struct {
	cdf []float64
}

// NewZipf builds a sampler over n ranks with exponent s.
func NewZipf(n int, s float64) (*Zipf, error) {
	if n < 1 {
		return nil, fmt.Errorf("workload: zipf needs n >= 1, got %d", n)
	}
	if s < 0 || math.IsNaN(s) || math.IsInf(s, 0) {
		return nil, fmt.Errorf("workload: zipf skew must be finite and >= 0, got %g", s)
	}
	cdf := make([]float64, n)
	sum := 0.0
	for k := 0; k < n; k++ {
		sum += math.Pow(float64(k+1), -s)
		cdf[k] = sum
	}
	for k := range cdf {
		cdf[k] /= sum
	}
	cdf[n-1] = 1 // guard against rounding leaving the tail unreachable
	return &Zipf{cdf: cdf}, nil
}

// MustZipf is NewZipf for static parameters known to be valid.
func MustZipf(n int, s float64) *Zipf {
	z, err := NewZipf(n, s)
	if err != nil {
		panic(err)
	}
	return z
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cdf) }

// Rank draws a rank in [0, n) using the given rng. Rank 0 is the most
// popular.
func (z *Zipf) Rank(rng *rand.Rand) int {
	u := rng.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}

// P returns the probability of drawing the given rank (for tests and
// sizing, not the sampling hot path).
func (z *Zipf) P(rank int) float64 {
	if rank < 0 || rank >= len(z.cdf) {
		return 0
	}
	if rank == 0 {
		return z.cdf[0]
	}
	return z.cdf[rank] - z.cdf[rank-1]
}

// SplitByRank partitions a total count over n ranks proportionally to
// the Zipf mass, guaranteeing each rank at least min and the parts
// summing exactly to total (assuming total >= n*min). The harness uses
// it to size multi-tenant tables: tenant 0 is the megatenant, the tail
// tenants stay small but non-empty.
func (z *Zipf) SplitByRank(total, min int) []int {
	n := len(z.cdf)
	parts := make([]int, n)
	rem := total - n*min
	if rem < 0 {
		rem = 0
	}
	assigned := 0
	for k := 0; k < n; k++ {
		p := int(math.Floor(z.P(k) * float64(rem)))
		parts[k] = min + p
		assigned += p
	}
	// Leftover from flooring goes to the hottest ranks, one unit each.
	for i := 0; assigned < rem; i = (i + 1) % n {
		parts[i]++
		assigned++
	}
	return parts
}
