package workload

import (
	"math/rand"

	"trapp/internal/interval"
	"trapp/internal/randomwalk"
	"trapp/internal/relation"
)

// StockQuote is one synthetic stock's day summary, the unit of the
// section 5.2.1 experiment: the day's low and high form the cached bound
// [L_i, H_i], the closing price is the precise master value V_i, and the
// refresh cost C_i is uniform in [1, 10].
type StockQuote struct {
	// Symbol is a synthetic ticker index.
	Symbol int
	// Low and High are the day's price extremes.
	Low, High float64
	// Close is the closing (master) price, inside [Low, High].
	Close float64
	// Cost is the refresh cost, an integer in [1, 10] as in the paper.
	Cost float64
}

// StockDay generates n synthetic volatile stocks. This substitutes for the
// paper's "90 actual stock prices that varied highly in one day": each
// stock runs a geometric random walk for one simulated trading day (390
// one-minute ticks) with high volatility, and the experiment consumes only
// the (low, high, close, cost) tuple — the same shape of input the paper's
// experiment used. Deterministic in seed.
func StockDay(n int, seed int64) []StockQuote {
	rng := rand.New(rand.NewSource(seed))
	quotes := make([]StockQuote, n)
	for i := range quotes {
		start := 20 + rng.Float64()*180 // opening price in [20, 200)
		vol := 0.004 + rng.Float64()*0.01
		g := randomwalk.NewGeometric(start, vol, rng.Int63())
		series := randomwalk.Series(g.Next, start, 390)
		lo, hi := randomwalk.Envelope(series)
		quotes[i] = StockQuote{
			Symbol: i,
			Low:    lo,
			High:   hi,
			Close:  series[len(series)-1],
			Cost:   float64(1 + rng.Intn(10)),
		}
	}
	return quotes
}

// StockSchema is the single-bounded-column schema of the stock experiment.
func StockSchema() *relation.Schema {
	return relation.NewSchema(
		relation.Column{Name: "symbol", Kind: relation.Exact},
		relation.Column{Name: "price", Kind: relation.Bounded},
	)
}

// StockTable builds the cached table for a set of quotes: each tuple's
// price bound is the day's [low, high] range.
func StockTable(quotes []StockQuote) *relation.Table {
	t := relation.NewTable(StockSchema())
	for _, q := range quotes {
		t.MustInsert(relation.Tuple{
			Key: int64(q.Symbol),
			Bounds: []interval.Interval{
				interval.Point(float64(q.Symbol)),
				interval.New(q.Low, q.High),
			},
			Cost: q.Cost,
		})
	}
	return t
}

// StockMaster returns the closing prices as the refresh oracle map.
func StockMaster(quotes []StockQuote) MapOracle {
	m := make(MapOracle, len(quotes))
	for _, q := range quotes {
		m[int64(q.Symbol)] = []float64{q.Close}
	}
	return m
}
