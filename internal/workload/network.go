package workload

import (
	"fmt"
	"math/rand"

	"trapp/internal/randomwalk"
)

// Link is one directed network link with evolving measurements, the unit
// of the running example's monitoring workload (paper section 1.1).
type Link struct {
	// Key is the link's object key.
	Key int64
	// From and To are node ids.
	From, To int
	// Cost is the query-refresh cost (e.g. proportional to node distance).
	Cost float64

	latency   *randomwalk.Gaussian
	bandwidth *randomwalk.Gaussian
	traffic   *randomwalk.Gaussian
}

// Values returns the link's current (latency, bandwidth, traffic).
func (l *Link) Values() []float64 {
	return []float64{l.latency.Value(), l.bandwidth.Value(), l.traffic.Value()}
}

// Step advances all three measurements one update.
func (l *Link) Step() []float64 {
	l.latency.Next()
	l.bandwidth.Next()
	l.traffic.Next()
	return l.Values()
}

// Network is a randomly generated monitored network: a set of nodes joined
// by directed links whose latency/bandwidth/traffic evolve as clamped
// Gaussian random walks. It substitutes for the paper's "wide-area network
// linking thousands of computers": the monitoring station caches one tuple
// per link, and the link-owning node acts as the data source.
type Network struct {
	// Nodes is the node count.
	Nodes int
	// Links are the generated links, keys 1..len.
	Links []*Link
}

// NewNetwork generates a random connected-ish topology with the given
// number of nodes and links. Link endpoints are sampled uniformly
// (self-loops excluded); costs are uniform integers in [1, 10].
// Deterministic in seed.
func NewNetwork(nodes, links int, seed int64) (*Network, error) {
	if nodes < 2 {
		return nil, fmt.Errorf("workload: need at least 2 nodes, got %d", nodes)
	}
	if links < 1 {
		return nil, fmt.Errorf("workload: need at least 1 link, got %d", links)
	}
	rng := rand.New(rand.NewSource(seed))
	net := &Network{Nodes: nodes}
	for i := 0; i < links; i++ {
		from := rng.Intn(nodes)
		to := rng.Intn(nodes - 1)
		if to >= from {
			to++
		}
		net.Links = append(net.Links, &Link{
			Key:       int64(i + 1),
			From:      from,
			To:        to,
			Cost:      float64(1 + rng.Intn(10)),
			latency:   randomwalk.NewGaussian(2+rng.Float64()*18, 0.5, 0.1, rng.Int63()),
			bandwidth: randomwalk.NewGaussian(40+rng.Float64()*60, 1.0, 1, rng.Int63()),
			traffic:   randomwalk.NewGaussian(80+rng.Float64()*70, 2.0, 0, rng.Int63()),
		})
	}
	return net, nil
}

// Step advances every link's measurements one update round.
func (n *Network) Step() {
	for _, l := range n.Links {
		l.Step()
	}
}

// Path returns the links forming a random simple walk of the given length
// for path queries like Q1/Q2; it may repeat links on small topologies.
func (n *Network) Path(length int, seed int64) []*Link {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*Link, 0, length)
	for len(out) < length {
		out = append(out, n.Links[rng.Intn(len(n.Links))])
	}
	return out
}
