package workload

import "fmt"

// Regime is one phase of an adversarial workload: for Ticks logical
// clock ticks, queries pick their target tenant with skew QueryS,
// updates pick their target object with skew UpdateS, and the hot end
// of both distributions is rotated by HotOffset ranks (drift). UpdateRate
// scales how many source pushes land per tick relative to the harness
// baseline (burst).
type Regime struct {
	// Name labels the phase in reports ("warm", "hot-burst", ...).
	Name string
	// Ticks is the phase length on the logical clock; must be > 0.
	Ticks int64
	// QueryS is the Zipf exponent for query key/tenant selection.
	QueryS float64
	// UpdateS is the Zipf exponent for update key selection.
	UpdateS float64
	// UpdateRate multiplies the baseline pushes-per-tick (1.0 = baseline).
	UpdateRate float64
	// HotOffset rotates the popularity ranking: rank r maps to object
	// (r + HotOffset) mod n, shifting which keys are hot without
	// changing the distribution's shape.
	HotOffset int
}

// Schedule is an ordered sequence of regimes laid end to end on the
// logical clock starting at tick 0. Regime i occupies ticks
// [sum(Ticks[:i]), sum(Ticks[:i+1])): boundaries land on exact ticks,
// which the generator tests pin down so a regime switch is observable
// on the tick it is scheduled for, not one later.
type Schedule struct {
	regimes []Regime
	starts  []int64 // starts[i] = first tick of regime i
	total   int64
}

// NewSchedule validates and lays out the regimes.
func NewSchedule(regimes []Regime) (*Schedule, error) {
	if len(regimes) == 0 {
		return nil, fmt.Errorf("workload: schedule needs at least one regime")
	}
	s := &Schedule{regimes: regimes, starts: make([]int64, len(regimes))}
	for i, r := range regimes {
		if r.Ticks <= 0 {
			return nil, fmt.Errorf("workload: regime %q has non-positive ticks %d", r.Name, r.Ticks)
		}
		if r.UpdateRate < 0 {
			return nil, fmt.Errorf("workload: regime %q has negative update rate", r.Name)
		}
		s.starts[i] = s.total
		s.total += r.Ticks
	}
	return s, nil
}

// Regimes returns the laid-out regimes in order.
func (s *Schedule) Regimes() []Regime { return s.regimes }

// TotalTicks is the schedule length; ticks at or past it clamp to the
// last regime.
func (s *Schedule) TotalTicks() int64 { return s.total }

// Start returns the first tick of regime i.
func (s *Schedule) Start(i int) int64 { return s.starts[i] }

// Index returns which regime owns the given tick. Ticks before 0 clamp
// to the first regime, ticks past the end to the last.
func (s *Schedule) Index(tick int64) int {
	for i := len(s.starts) - 1; i > 0; i-- {
		if tick >= s.starts[i] {
			return i
		}
	}
	return 0
}

// At returns the regime owning the given tick.
func (s *Schedule) At(tick int64) Regime { return s.regimes[s.Index(tick)] }

// DefaultSchedule is the harness's standard four-phase adversarial
// sweep: a uniform warm phase, a steady Zipfian phase, a hot burst
// (sharper skew, 8× update rate), then a drift phase that rotates the
// hot set halfway around the keyspace while the burst cools off. Each
// phase runs ticksPerPhase ticks; queryS/updateS set the steady-phase
// skews, with the burst phase sharpened beyond them.
func DefaultSchedule(ticksPerPhase int64, queryS, updateS float64, objects int) *Schedule {
	s, err := NewSchedule([]Regime{
		{Name: "warm", Ticks: ticksPerPhase, QueryS: 0, UpdateS: 0, UpdateRate: 1},
		{Name: "zipf-steady", Ticks: ticksPerPhase, QueryS: queryS, UpdateS: updateS, UpdateRate: 1},
		{Name: "hot-burst", Ticks: ticksPerPhase, QueryS: queryS + 0.3, UpdateS: updateS + 0.3, UpdateRate: 8},
		{Name: "drift", Ticks: ticksPerPhase, QueryS: queryS, UpdateS: updateS, UpdateRate: 2, HotOffset: objects / 2},
	})
	if err != nil {
		panic(err) // static parameters; cannot fail for ticksPerPhase > 0
	}
	return s
}
