package workload

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

// Empirical distribution checks run at a fixed seed so tolerances are
// exact-once thresholds, not flaky statistical gates.

func TestZipfMomentsWithinTolerance(t *testing.T) {
	cases := []struct {
		name   string
		n      int
		s      float64
		draws  int
		relTol float64
	}{
		{"uniform", 256, 0, 200000, 0.10},
		{"classic", 1000, 1.1, 200000, 0.05},
		{"sharp", 1000, 1.4, 200000, 0.05},
		{"subcritical", 1000, 0.8, 200000, 0.05},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			z, err := NewZipf(tc.n, tc.s)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(11))
			counts := make([]int, tc.n)
			var sumRank float64
			for i := 0; i < tc.draws; i++ {
				r := z.Rank(rng)
				if r < 0 || r >= tc.n {
					t.Fatalf("rank %d out of range", r)
				}
				counts[r]++
				sumRank += float64(r)
			}
			// First moment: empirical mean rank vs analytic mean.
			var mean float64
			for k := 0; k < tc.n; k++ {
				mean += float64(k) * z.P(k)
			}
			gotMean := sumRank / float64(tc.draws)
			if math.Abs(gotMean-mean) > tc.relTol*math.Max(mean, 1) {
				t.Errorf("mean rank = %.3f, analytic %.3f", gotMean, mean)
			}
			// Head mass: empirical P(rank 0) vs analytic.
			got0 := float64(counts[0]) / float64(tc.draws)
			if math.Abs(got0-z.P(0)) > tc.relTol*z.P(0) {
				t.Errorf("P(0) = %.5f, analytic %.5f", got0, z.P(0))
			}
			if tc.s == 0 {
				// Uniform: analytic head mass must be exactly 1/n.
				if math.Abs(z.P(0)-1/float64(tc.n)) > 1e-12 {
					t.Errorf("uniform P(0) = %g, want %g", z.P(0), 1/float64(tc.n))
				}
			}
		})
	}
}

func TestZipfDeterministicPerSeed(t *testing.T) {
	z := MustZipf(5000, 1.2)
	a, b := rand.New(rand.NewSource(3)), rand.New(rand.NewSource(3))
	diffSeed := rand.New(rand.NewSource(4))
	same := true
	for i := 0; i < 1000; i++ {
		x, y := z.Rank(a), z.Rank(b)
		if x != y {
			t.Fatalf("draw %d differs across identical seeds: %d vs %d", i, x, y)
		}
		if x != z.Rank(diffSeed) {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestZipfValidation(t *testing.T) {
	for _, tc := range []struct {
		n int
		s float64
	}{{0, 1}, {-3, 1}, {10, -0.5}, {10, math.NaN()}, {10, math.Inf(1)}} {
		if _, err := NewZipf(tc.n, tc.s); err == nil {
			t.Errorf("NewZipf(%d, %g) accepted", tc.n, tc.s)
		}
	}
}

func TestZipfSplitByRank(t *testing.T) {
	z := MustZipf(32, 1.0)
	parts := z.SplitByRank(100000, 16)
	sum := 0
	for i, p := range parts {
		sum += p
		if p < 16 {
			t.Errorf("part %d = %d below floor", i, p)
		}
		if i > 0 && p > parts[i-1] {
			t.Errorf("parts not non-increasing at %d: %d > %d", i, p, parts[i-1])
		}
	}
	if sum != 100000 {
		t.Errorf("parts sum to %d, want 100000", sum)
	}
	if parts[0] <= parts[31]*4 {
		t.Errorf("head tenant %d not clearly larger than tail %d", parts[0], parts[31])
	}
}

func TestScheduleBoundariesOnExactTicks(t *testing.T) {
	s, err := NewSchedule([]Regime{
		{Name: "a", Ticks: 10, UpdateRate: 1},
		{Name: "b", Ticks: 20, UpdateRate: 1},
		{Name: "c", Ticks: 30, UpdateRate: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.TotalTicks() != 60 {
		t.Fatalf("total = %d", s.TotalTicks())
	}
	cases := []struct {
		tick int64
		want string
	}{
		{-5, "a"}, {0, "a"}, {9, "a"},
		{10, "b"}, {29, "b"},
		{30, "c"}, {59, "c"},
		{60, "c"}, {1000, "c"}, // clamp past the end
	}
	for _, tc := range cases {
		if got := s.At(tc.tick).Name; got != tc.want {
			t.Errorf("At(%d) = %q, want %q", tc.tick, got, tc.want)
		}
	}
	if s.Start(1) != 10 || s.Start(2) != 30 {
		t.Errorf("starts = %d, %d", s.Start(1), s.Start(2))
	}
}

func TestScheduleValidation(t *testing.T) {
	if _, err := NewSchedule(nil); err == nil {
		t.Error("empty schedule accepted")
	}
	if _, err := NewSchedule([]Regime{{Name: "z", Ticks: 0}}); err == nil {
		t.Error("zero-tick regime accepted")
	}
	if _, err := NewSchedule([]Regime{{Name: "z", Ticks: 5, UpdateRate: -1}}); err == nil {
		t.Error("negative update rate accepted")
	}
}

func TestDefaultScheduleShape(t *testing.T) {
	s := DefaultSchedule(100, 1.1, 1.2, 100000)
	regs := s.Regimes()
	if len(regs) < 2 {
		t.Fatalf("default schedule has %d regimes, need a regime switch", len(regs))
	}
	if regs[0].QueryS != 0 {
		t.Errorf("warm phase skew = %g, want uniform", regs[0].QueryS)
	}
	var burst, drift *Regime
	for i := range regs {
		switch regs[i].Name {
		case "hot-burst":
			burst = &regs[i]
		case "drift":
			drift = &regs[i]
		}
	}
	if burst == nil || burst.UpdateRate <= 1 {
		t.Error("no burst regime with elevated update rate")
	}
	if drift == nil || drift.HotOffset != 50000 {
		t.Error("no drift regime rotating the hot set")
	}
}

func TestScaleDeterministicPerSeed(t *testing.T) {
	cfg := ScaleConfig{Objects: 5000, Tenants: 8, Seed: 21}
	a, err := NewScale(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewScale(cfg)
	for i := range a.Objects {
		if a.Objects[i] != b.Objects[i] {
			t.Fatalf("object %d differs across identical seeds", i)
		}
	}
	cfg.Seed = 22
	c, _ := NewScale(cfg)
	same := true
	for i := range a.Objects {
		if a.Objects[i] != c.Objects[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical populations")
	}
}

func TestScaleLayout(t *testing.T) {
	s, err := NewScale(ScaleConfig{Objects: 20000, Tenants: 16, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for t2 := 0; t2 < 16; t2++ {
		size := s.TenantSize(t2)
		total += size
		objs := s.TenantObjects(t2)
		if len(objs) != size {
			t.Fatalf("tenant %d: subslice %d != size %d", t2, len(objs), size)
		}
		for i, o := range objs {
			if o.Tenant != t2 {
				t.Fatalf("tenant %d object %d labeled %d", t2, i, o.Tenant)
			}
			if o.Key != s.TenantStart(t2)+int64(i) {
				t.Fatalf("tenant %d object %d has key %d", t2, i, o.Key)
			}
		}
	}
	if total != 20000 {
		t.Errorf("tenant sizes sum to %d", total)
	}
	for k, o := range s.Objects {
		if o.Key != int64(k) {
			t.Fatalf("Objects[%d].Key = %d", k, o.Key)
		}
		if o.Region < 0 || o.Region >= 8 {
			t.Errorf("object %d region %d out of range", k, o.Region)
		}
		if o.Cost < 1 || o.Cost > 10 || o.Cost != math.Trunc(o.Cost) {
			t.Errorf("object %d cost %g not an integer in [1,10]", k, o.Cost)
		}
	}
}

func TestScaleValidation(t *testing.T) {
	if _, err := NewScale(ScaleConfig{Objects: 0, Tenants: 1}); err == nil {
		t.Error("0-object scale accepted")
	}
	if _, err := NewScale(ScaleConfig{Objects: 10, Tenants: 0}); err == nil {
		t.Error("0-tenant scale accepted")
	}
	if _, err := NewScale(ScaleConfig{Objects: 10, Tenants: 8}); err == nil {
		t.Error("under-floored tenants accepted")
	}
}

func TestScaleObjectStepDeterministicAndClamped(t *testing.T) {
	s, _ := NewScale(ScaleConfig{Objects: 100, Tenants: 2, Seed: 9})
	o1, o2 := s.Objects[3], s.Objects[3]
	r1, r2 := rand.New(rand.NewSource(77)), rand.New(rand.NewSource(77))
	for i := 0; i < 200; i++ {
		v1, v2 := o1.Step(r1, 1), o2.Step(r2, 1)
		for j := range v1 {
			if v1[j] != v2[j] {
				t.Fatalf("step %d differs across identical rng streams", i)
			}
			if v1[j] < 0 {
				t.Fatalf("step %d produced negative value %g", i, v1[j])
			}
		}
	}
	// Burst scaling amplifies displacement on the same rng stream.
	base, burst := s.Objects[5], s.Objects[5]
	rb1, rb2 := rand.New(rand.NewSource(13)), rand.New(rand.NewSource(13))
	var dBase, dBurst float64
	for i := 0; i < 500; i++ {
		base.Step(rb1, 1)
		burst.Step(rb2, 8)
	}
	dBase = math.Abs(base.Value-s.Objects[5].Value) + math.Abs(base.Load-s.Objects[5].Load)
	dBurst = math.Abs(burst.Value-s.Objects[5].Value) + math.Abs(burst.Load-s.Objects[5].Load)
	if dBurst <= dBase {
		t.Errorf("burst displacement %g not larger than baseline %g", dBurst, dBase)
	}
}

func TestScaleCorpusShapes(t *testing.T) {
	a, b := ScaleCorpus(), ScaleCorpus()
	if len(a) < 8 {
		t.Fatalf("corpus has only %d shapes", len(a))
	}
	if len(a) != len(b) {
		t.Fatal("corpus not deterministic")
	}
	sawGroup, sawTenant := false, false
	for i, q := range a {
		if q != b[i] {
			t.Fatalf("corpus entry %d differs across calls", i)
		}
		if len(q) == 0 {
			t.Fatal("empty corpus entry")
		}
		if strings.Contains(q, "GROUP BY region") {
			sawGroup = true
		}
		if strings.Contains(q, "tenant_") {
			sawTenant = true
		}
	}
	if !sawGroup || !sawTenant {
		t.Errorf("corpus missing shapes: group=%v tenant=%v", sawGroup, sawTenant)
	}
}
