package workload

import (
	"fmt"
	"math/rand"

	"trapp/internal/relation"
)

// ScaleConfig parameterizes the adversarial multi-tenant workload: a
// population of Objects spread over Tenants tables (sizes Zipfian in
// TenantSkew, so tenant 0 is a megatenant and the tail stays small),
// each object carrying two bounded measurements driven by Gaussian
// walks plus an exact region dimension for grouping. Unlike the
// network/stockday generators — a few thousand objects, each owning
// private rng state — this one is sized for 10⁵–10⁶ objects, so
// objects hold only their walk state and are stepped with a
// caller-owned rng.
type ScaleConfig struct {
	// Objects is the total object population across all tenants.
	Objects int
	// Tenants is the number of tenant tables (tenant_0 .. tenant_{n-1}).
	Tenants int
	// Regions is the cardinality of the exact region column (default 8).
	Regions int
	// TenantSkew is the Zipf exponent for tenant sizing (default 1.0).
	TenantSkew float64
	// MinPerTenant floors every tenant's size (default 16).
	MinPerTenant int
	// Seed makes generation deterministic.
	Seed int64
}

func (c ScaleConfig) withDefaults() ScaleConfig {
	if c.Regions == 0 {
		c.Regions = 8
	}
	if c.TenantSkew == 0 {
		c.TenantSkew = 1.0
	}
	if c.MinPerTenant == 0 {
		c.MinPerTenant = 16
	}
	return c
}

// ScaleObject is one monitored object: its key is its global index, its
// master values evolve as two clamped Gaussian walks stepped by the
// harness. The struct is deliberately flat (no per-object rng) so a
// million of them fit in tens of megabytes.
type ScaleObject struct {
	// Key is the globally unique object key (== global index).
	Key int64
	// Tenant is the owning tenant index.
	Tenant int
	// Region is the exact grouping dimension, in [0, Regions).
	Region int64
	// Cost is the refresh cost, an integer in [1, 10].
	Cost float64
	// Value and Load are the current master measurements.
	Value, Load float64

	sigmaV, sigmaL float64
}

// Values returns the object's current bounded measurements (value,
// load) — the payload a source pushes; the exact region column is
// fixed at subscription time.
func (o *ScaleObject) Values() []float64 {
	return []float64{o.Value, o.Load}
}

// Step advances both walks one update with step size scaled by burst
// (1.0 = baseline volatility) using the caller's rng, and returns the
// new measurements. Values clamp at zero.
func (o *ScaleObject) Step(rng *rand.Rand, burst float64) []float64 {
	o.Value += rng.NormFloat64() * o.sigmaV * burst
	if o.Value < 0 {
		o.Value = 0
	}
	o.Load += rng.NormFloat64() * o.sigmaL * burst
	if o.Load < 0 {
		o.Load = 0
	}
	return o.Values()
}

// Scale is the generated population plus its tenant layout. Keys are
// assigned in ascending order tenant by tenant, so loading a tenant
// table inserts in sorted order (O(1) appends in the sharded store).
type Scale struct {
	// Config echoes the (defaulted) generation parameters.
	Config ScaleConfig
	// Objects holds all objects ordered by key; Objects[k].Key == k.
	Objects []ScaleObject

	sizes  []int
	starts []int64 // starts[t] = key of tenant t's first object
}

// NewScale generates the population. Deterministic in cfg.Seed.
func NewScale(cfg ScaleConfig) (*Scale, error) {
	cfg = cfg.withDefaults()
	if cfg.Objects < 1 {
		return nil, fmt.Errorf("workload: scale needs at least 1 object, got %d", cfg.Objects)
	}
	if cfg.Tenants < 1 {
		return nil, fmt.Errorf("workload: scale needs at least 1 tenant, got %d", cfg.Tenants)
	}
	if cfg.Objects < cfg.Tenants*cfg.MinPerTenant {
		return nil, fmt.Errorf("workload: %d objects cannot floor %d tenants at %d each",
			cfg.Objects, cfg.Tenants, cfg.MinPerTenant)
	}
	zt, err := NewZipf(cfg.Tenants, cfg.TenantSkew)
	if err != nil {
		return nil, err
	}
	s := &Scale{
		Config:  cfg,
		Objects: make([]ScaleObject, cfg.Objects),
		sizes:   zt.SplitByRank(cfg.Objects, cfg.MinPerTenant),
		starts:  make([]int64, cfg.Tenants),
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	key := int64(0)
	for t := 0; t < cfg.Tenants; t++ {
		s.starts[t] = key
		for i := 0; i < s.sizes[t]; i++ {
			s.Objects[key] = ScaleObject{
				Key:    key,
				Tenant: t,
				Region: int64(rng.Intn(cfg.Regions)),
				Cost:   float64(1 + rng.Intn(10)),
				Value:  20 + rng.Float64()*180,
				Load:   rng.Float64() * 100,
				sigmaV: 0.2 + rng.Float64()*0.8,
				sigmaL: 0.5 + rng.Float64()*1.5,
			}
			key++
		}
	}
	return s, nil
}

// TenantName is the SQL table name of tenant t.
func TenantName(t int) string { return fmt.Sprintf("tenant_%d", t) }

// TenantSize returns tenant t's object count.
func (s *Scale) TenantSize(t int) int { return s.sizes[t] }

// TenantStart returns the key of tenant t's first object; the tenant
// owns keys [TenantStart(t), TenantStart(t)+TenantSize(t)).
func (s *Scale) TenantStart(t int) int64 { return s.starts[t] }

// TenantObjects returns tenant t's objects as a subslice of Objects.
func (s *Scale) TenantObjects(t int) []ScaleObject {
	return s.Objects[s.starts[t] : s.starts[t]+int64(s.sizes[t])]
}

// ScaleSchema is the shared tenant-table schema: an exact region
// dimension plus two bounded measurements.
func ScaleSchema() *relation.Schema {
	return relation.NewSchema(
		relation.Column{Name: "region", Kind: relation.Exact},
		relation.Column{Name: "value", Kind: relation.Bounded},
		relation.Column{Name: "load", Kind: relation.Bounded},
	)
}

// QuerySQL renders a random single-answer query against tenant t — the
// shapes the -scale harness sends through POST /query (which rejects
// GROUP BY, so grouped shapes live in SubscriptionSQL). Deterministic
// in the rng stream.
func (s *Scale) QuerySQL(rng *rand.Rand, t int) string {
	name := TenantName(t)
	switch rng.Intn(5) {
	case 0:
		return fmt.Sprintf("SELECT SUM(value) WITHIN %d FROM %s", 50+rng.Intn(450), name)
	case 1:
		return fmt.Sprintf("SELECT AVG(load) WITHIN %d%% FROM %s", 2+rng.Intn(18), name)
	case 2:
		return fmt.Sprintf("SELECT MIN(value), MAX(value) FROM %s", name)
	case 3:
		return fmt.Sprintf("SELECT COUNT(value) WITHIN %d FROM %s WHERE load > %d",
			rng.Intn(4), name, 20+rng.Intn(60))
	default:
		return fmt.Sprintf("SELECT SUM(%s.value) WITHIN %d FROM %s WHERE region = %d AND load >= %d",
			name, 20+rng.Intn(180), name, rng.Intn(s.Config.Regions), rng.Intn(40))
	}
}

// SubscriptionSQL renders a random standing-query shape against tenant
// t, including GROUP BY over the tenant's region column.
func (s *Scale) SubscriptionSQL(rng *rand.Rand, t int) string {
	name := TenantName(t)
	switch rng.Intn(3) {
	case 0:
		return fmt.Sprintf("SELECT SUM(value) WITHIN %d FROM %s GROUP BY region", 100+rng.Intn(400), name)
	case 1:
		return fmt.Sprintf("SELECT AVG(load) WITHIN %d%% FROM %s GROUP BY region", 5+rng.Intn(15), name)
	default:
		return fmt.Sprintf("SELECT MAX(load) WITHIN %d FROM %s", 10+rng.Intn(40), name)
	}
}

// ScaleCorpus returns a deterministic sample of the SQL shapes the
// -scale harness generates, for seeding parser fuzz corpora: one of
// each QuerySQL/SubscriptionSQL production over a few tenant names,
// from a fixed rng stream.
func ScaleCorpus() []string {
	s, err := NewScale(ScaleConfig{Objects: 64, Tenants: 4, Seed: 1})
	if err != nil {
		panic(err)
	}
	rng := rand.New(rand.NewSource(7))
	seen := map[string]bool{}
	var out []string
	for i := 0; i < 64; i++ {
		t := i % s.Config.Tenants
		for _, q := range []string{s.QuerySQL(rng, t), s.SubscriptionSQL(rng, t)} {
			if !seen[q] {
				seen[q] = true
				out = append(out, q)
			}
		}
	}
	return out
}
