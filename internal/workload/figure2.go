// Package workload provides the data sets and generators used by the
// TRAPP/AG examples, tests, and experiments: the paper's 6-link network
// monitoring fixture (Figure 2), random network topologies with evolving
// link measurements, and the synthetic "volatile stock day" series that
// substitutes for the 90 real stock prices of section 5.2.1.
package workload

import (
	"trapp/internal/interval"
	"trapp/internal/relation"
)

// Link column names in the network monitoring schema.
const (
	ColFrom      = "from"
	ColTo        = "to"
	ColLatency   = "latency"
	ColBandwidth = "bandwidth"
	ColTraffic   = "traffic"
)

// LinkSchema returns the network-monitoring schema of the running example:
// exact endpoints plus bounded latency, bandwidth, and traffic measures.
func LinkSchema() *relation.Schema {
	return relation.NewSchema(
		relation.Column{Name: ColFrom, Kind: relation.Exact},
		relation.Column{Name: ColTo, Kind: relation.Exact},
		relation.Column{Name: ColLatency, Kind: relation.Bounded},
		relation.Column{Name: ColBandwidth, Kind: relation.Bounded},
		relation.Column{Name: ColTraffic, Kind: relation.Bounded},
	)
}

// Figure2Row is one row of the paper's Figure 2 sample data: cached bounds
// plus the precise master values held at the nodes, and the refresh cost.
type Figure2Row struct {
	Key                            int64
	From, To                       int64
	Latency, Bandwidth, Traffic    interval.Interval
	LatencyV, BandwidthV, TrafficV float64
	Cost                           float64
}

// Figure2 returns the six links of the paper's Figure 2, in row order.
// Tuple keys 1–6 match the paper's row numbers, so worked examples such as
// "CHOOSE_REFRESH chooses TR = {5, 6}" translate directly into tests.
func Figure2() []Figure2Row {
	return []Figure2Row{
		{1, 1, 2, interval.New(2, 4), interval.New(60, 70), interval.New(95, 105), 3, 61, 98, 3},
		{2, 2, 4, interval.New(5, 7), interval.New(45, 60), interval.New(110, 120), 7, 53, 116, 6},
		{3, 3, 4, interval.New(12, 16), interval.New(55, 70), interval.New(95, 110), 13, 62, 105, 6},
		{4, 2, 3, interval.New(9, 11), interval.New(65, 70), interval.New(120, 145), 9, 68, 127, 8},
		{5, 4, 5, interval.New(8, 11), interval.New(40, 55), interval.New(90, 110), 11, 50, 95, 4},
		{6, 5, 6, interval.New(4, 6), interval.New(45, 60), interval.New(90, 105), 5, 45, 103, 2},
	}
}

// Figure2Table builds the cached table of Figure 2. Master values are not
// stored in the table; use Figure2Master for the refresh oracle.
func Figure2Table() *relation.Table {
	t := relation.NewTable(LinkSchema())
	for _, r := range Figure2() {
		t.MustInsert(relation.Tuple{
			Key: r.Key,
			Bounds: []interval.Interval{
				interval.Point(float64(r.From)),
				interval.Point(float64(r.To)),
				r.Latency, r.Bandwidth, r.Traffic,
			},
			Cost: r.Cost,
		})
	}
	return t
}

// Figure2Master returns the precise master values for each key, in bounded
// column order (latency, bandwidth, traffic) — the oracle a refresh
// consults.
func Figure2Master() map[int64][]float64 {
	m := make(map[int64][]float64, 6)
	for _, r := range Figure2() {
		m[r.Key] = []float64{r.LatencyV, r.BandwidthV, r.TrafficV}
	}
	return m
}

// MapOracle adapts a key→values map to the refresh Oracle interface used
// by the query processor.
type MapOracle map[int64][]float64

// Master returns the exact bounded-column values for a key; ok is false
// for unknown keys.
func (m MapOracle) Master(key int64) (vals []float64, ok bool) {
	v, ok := m[key]
	return v, ok
}
