package workload

import (
	"testing"

	"trapp/internal/relation"
)

func TestFigure2Fixture(t *testing.T) {
	rows := Figure2()
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	tab := Figure2Table()
	if tab.Len() != 6 {
		t.Fatalf("table len = %d", tab.Len())
	}
	master := Figure2Master()
	// Every master value lies inside its cached bound.
	s := tab.Schema()
	lat := s.MustLookup(ColLatency)
	bw := s.MustLookup(ColBandwidth)
	tr := s.MustLookup(ColTraffic)
	for _, r := range rows {
		tu := tab.At(tab.ByKey(r.Key))
		m := master[r.Key]
		if !tu.Bounds[lat].Contains(m[0]) || !tu.Bounds[bw].Contains(m[1]) || !tu.Bounds[tr].Contains(m[2]) {
			t.Errorf("tuple %d: master %v outside bounds", r.Key, m)
		}
	}
	// Costs match Figure 2's refresh cost column.
	wantCosts := map[int64]float64{1: 3, 2: 6, 3: 6, 4: 8, 5: 4, 6: 2}
	for k, w := range wantCosts {
		if got := tab.At(tab.ByKey(k)).Cost; got != w {
			t.Errorf("tuple %d cost = %g, want %g", k, got, w)
		}
	}
}

func TestStockDayDeterministicAndConsistent(t *testing.T) {
	a := StockDay(90, 42)
	b := StockDay(90, 42)
	if len(a) != 90 {
		t.Fatalf("len = %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("quote %d differs across identical seeds", i)
		}
		q := a[i]
		if q.Low > q.High {
			t.Errorf("quote %d: low %g > high %g", i, q.Low, q.High)
		}
		if q.Close < q.Low || q.Close > q.High {
			t.Errorf("quote %d: close %g outside [%g, %g]", i, q.Close, q.Low, q.High)
		}
		if q.Cost < 1 || q.Cost > 10 || q.Cost != float64(int(q.Cost)) {
			t.Errorf("quote %d: cost %g not an integer in [1, 10]", i, q.Cost)
		}
	}
	c := StockDay(90, 43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical data")
	}
}

func TestStockDayIsVolatile(t *testing.T) {
	quotes := StockDay(90, 7)
	// The experiment needs meaningful bound widths; require an average
	// relative day range of at least 2%.
	var rel float64
	for _, q := range quotes {
		rel += (q.High - q.Low) / q.Close
	}
	rel /= float64(len(quotes))
	if rel < 0.02 {
		t.Errorf("average relative range = %.4f, want >= 0.02", rel)
	}
}

func TestStockTableAndMaster(t *testing.T) {
	quotes := StockDay(10, 1)
	tab := StockTable(quotes)
	if tab.Len() != 10 {
		t.Fatalf("table len = %d", tab.Len())
	}
	m := StockMaster(quotes)
	price := tab.Schema().MustLookup("price")
	for _, q := range quotes {
		tu := tab.At(tab.ByKey(int64(q.Symbol)))
		mv, ok := m.Master(int64(q.Symbol))
		if !ok || !tu.Bounds[price].Contains(mv[0]) {
			t.Errorf("symbol %d: master %v outside bound %v", q.Symbol, mv, tu.Bounds[price])
		}
	}
}

func TestNewNetwork(t *testing.T) {
	n, err := NewNetwork(50, 200, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Links) != 200 {
		t.Fatalf("links = %d", len(n.Links))
	}
	for _, l := range n.Links {
		if l.From == l.To {
			t.Errorf("self-loop on link %d", l.Key)
		}
		if l.From < 0 || l.From >= 50 || l.To < 0 || l.To >= 50 {
			t.Errorf("link %d endpoints out of range: %d→%d", l.Key, l.From, l.To)
		}
		v := l.Values()
		if len(v) != 3 || v[0] < 0 {
			t.Errorf("link %d values %v", l.Key, v)
		}
	}
}

func TestNetworkValidation(t *testing.T) {
	if _, err := NewNetwork(1, 5, 0); err == nil {
		t.Error("1-node network accepted")
	}
	if _, err := NewNetwork(5, 0, 0); err == nil {
		t.Error("0-link network accepted")
	}
}

func TestNetworkStepChangesValues(t *testing.T) {
	n, err := NewNetwork(10, 20, 3)
	if err != nil {
		t.Fatal(err)
	}
	before := n.Links[0].Values()
	n.Step()
	after := n.Links[0].Values()
	changed := false
	for i := range before {
		if before[i] != after[i] {
			changed = true
		}
	}
	if !changed {
		t.Error("Step did not change any measurement")
	}
}

func TestNetworkPath(t *testing.T) {
	n, err := NewNetwork(10, 20, 3)
	if err != nil {
		t.Fatal(err)
	}
	p := n.Path(5, 1)
	if len(p) != 5 {
		t.Fatalf("path len = %d", len(p))
	}
}

func TestLinkSchemaShape(t *testing.T) {
	s := LinkSchema()
	if s.NumColumns() != 5 {
		t.Fatalf("columns = %d", s.NumColumns())
	}
	if len(s.BoundedColumns()) != 3 {
		t.Errorf("bounded columns = %v", s.BoundedColumns())
	}
	if s.Column(0).Kind != relation.Exact {
		t.Error("from column not exact")
	}
}
