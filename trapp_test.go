package trapp_test

import (
	"context"
	"errors"
	"math"
	"testing"

	"trapp"
	"trapp/internal/workload"
)

// buildMonitor assembles a monitoring system over the Figure 2 data using
// only the public API (plus the workload fixture).
func buildMonitor(t *testing.T) *trapp.System {
	t.Helper()
	sys := trapp.NewSystem(trapp.Options{Solver: trapp.SolverExactDP})
	src, err := sys.AddSource("nodes", nil)
	if err != nil {
		t.Fatal(err)
	}
	c, err := sys.AddCache("monitor", workload.LinkSchema())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range workload.Figure2() {
		if err := src.AddObject(row.Key,
			[]float64{row.LatencyV, row.BandwidthV, row.TrafficV},
			row.Cost, trapp.StaticWidth(2)); err != nil {
			t.Fatal(err)
		}
		if err := c.Subscribe(src, row.Key, []float64{float64(row.From), float64(row.To)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Mount("links", c); err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestPublicAPIEndToEnd(t *testing.T) {
	sys := buildMonitor(t)
	sys.Clock.Advance(25) // ±10 bounds

	q, err := trapp.ParseQuery("SELECT AVG(latency) WITHIN 3 FROM links WHERE traffic > 100", sys)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.ExecuteCtx(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Met {
		t.Fatalf("constraint not met: %v", res.Answer)
	}
	if res.Answer.Width() > 3+1e-9 {
		t.Errorf("width %g > 3", res.Answer.Width())
	}
	// True AVG latency over links with traffic > 100 (traffic values
	// 98,116,105,127,95,103 → links 2,3,4,6 with latencies 7,13,9,5) = 8.5.
	if !res.Answer.Contains(8.5) {
		t.Errorf("answer %v does not contain 8.5", res.Answer)
	}
}

func TestPublicAPIParseErrors(t *testing.T) {
	sys := buildMonitor(t)
	if _, err := trapp.ParseQuery("SELECT SUM(latency) FROM missing", sys); err == nil {
		t.Error("unknown table accepted")
	}
	if _, err := trapp.ParseQuery("garbage", sys); err == nil {
		t.Error("garbage accepted")
	}
}

func TestPublicAPIHandBuiltQuery(t *testing.T) {
	sys := buildMonitor(t)
	sys.Clock.Advance(100)
	schema := sys.MountedCache("links").Schema()
	bw := schema.MustLookup(workload.ColBandwidth)

	q := trapp.NewQuery("links", trapp.Min, workload.ColBandwidth)
	q.Within = 5
	q.Where = trapp.NewCmp(trapp.PredColumn(bw, "bandwidth"), trapp.Gt, trapp.PredConst(0))
	res, err := sys.ExecuteCtx(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Met || res.Answer.Width() > 5+1e-9 {
		t.Fatalf("MIN not met: %v", res.Answer)
	}
	if !res.Answer.Contains(45) {
		t.Errorf("answer %v does not contain true MIN 45", res.Answer)
	}
}

func TestPublicAPIMultiAggregateBatch(t *testing.T) {
	sys := buildMonitor(t)
	sys.Clock.Advance(25)

	// A multi-aggregate statement compiles to a batch sharing one scan
	// and one deduped refresh round.
	qs, err := trapp.ParseQueries("SELECT MIN(latency), MAX(latency), AVG(latency) WITHIN 2 FROM links", sys)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 3 {
		t.Fatalf("parsed %d queries, want 3", len(qs))
	}
	results, err := sys.ExecuteBatch(context.Background(), qs)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if !res.Met {
			t.Errorf("query %d (%v) unmet: %+v", i, qs[i], res)
		}
		if res.Answer.Width() > 2+1e-9 {
			t.Errorf("query %d: width %g > 2", i, res.Answer.Width())
		}
	}
	if results[0].Answer.Lo > results[2].Answer.Hi || results[2].Answer.Lo > results[1].Answer.Hi {
		t.Errorf("MIN %v, AVG %v, MAX %v are not ordered", results[0].Answer, results[2].Answer, results[1].Answer)
	}

	// The single-query parser rejects the multi-aggregate statement with
	// a positioned SQL error.
	_, err = trapp.ParseQuery("SELECT MIN(latency), MAX(latency) FROM links", sys)
	var perr *trapp.SQLError
	if err == nil || !errors.As(err, &perr) {
		t.Errorf("ParseQuery multi-agg: err = %v, want *SQLError", err)
	}
}

func TestPublicAPIIntervalHelpers(t *testing.T) {
	iv := trapp.NewInterval(1, 3)
	if iv.Width() != 2 || !iv.Contains(2) {
		t.Error("interval helpers broken")
	}
	if !trapp.Point(5).IsPoint() {
		t.Error("Point helper broken")
	}
}

func TestPublicAPIModes(t *testing.T) {
	sys := buildMonitor(t)
	sys.Clock.Advance(10000)
	q := trapp.NewQuery("links", trapp.Sum, workload.ColTraffic)

	imp, err := sys.ExecuteCtx(context.Background(), q, trapp.WithMode(trapp.ModeImprecise))
	if err != nil {
		t.Fatal(err)
	}
	if imp.RefreshCost != 0 {
		t.Error("imprecise mode paid refresh cost")
	}
	//lint:ignore SA1019 the deprecated wrapper must keep matching the option
	wrapper, err := sys.ImpreciseMode(q)
	if err != nil {
		t.Fatal(err)
	}
	if wrapper.Answer != imp.Answer {
		t.Error("deprecated ImpreciseMode diverges from WithMode(ModeImprecise)")
	}
	prec, err := sys.ExecuteCtx(context.Background(), q, trapp.WithMode(trapp.ModePrecise))
	if err != nil {
		t.Fatal(err)
	}
	if prec.Answer.Width() > 1e-9 {
		t.Error("precise mode imprecise")
	}
	trueSum := 98.0 + 116 + 105 + 127 + 95 + 103
	if math.Abs(prec.Answer.Lo-trueSum) > 1e-9 {
		t.Errorf("precise SUM = %v, want %g", prec.Answer, trueSum)
	}
	if !imp.Answer.ContainsInterval(prec.Answer) {
		t.Error("imprecise answer does not contain precise answer")
	}
}
