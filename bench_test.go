// Top-level benchmarks, one per paper table/figure plus the DESIGN.md
// ablations. Run with:
//
//	go test -bench=. -benchmem
//
// EXPERIMENTS.md records the measured shapes against the paper's.
package trapp_test

import (
	"fmt"
	"math"
	"testing"

	"trapp/internal/aggregate"
	"trapp/internal/experiment"
	"trapp/internal/interval"
	"trapp/internal/join"
	"trapp/internal/knapsack"
	"trapp/internal/predicate"
	"trapp/internal/quantile"
	"trapp/internal/query"
	"trapp/internal/refresh"
	"trapp/internal/relation"
	"trapp/internal/workload"
)

// stockInstance builds the section 5.2.1 experiment input: n stocks as
// knapsack items (profit = cost, weight = day range).
func stockInstance(n int) ([]knapsack.Item, []workload.StockQuote) {
	quotes := workload.StockDay(n, experiment.DefaultSeed)
	items := make([]knapsack.Item, len(quotes))
	for i, q := range quotes {
		items[i] = knapsack.Item{Profit: q.Cost, Weight: q.High - q.Low}
	}
	return items, quotes
}

// BenchmarkFigure5ChooseRefreshTime regenerates the left axis of Figure 5:
// CHOOSE_REFRESH(SUM) running time as the knapsack ε varies, R = 100,
// 90 stock objects. The paper's shape — time growing roughly quadratically
// in 1/ε — shows as ns/op across sub-benchmarks.
func BenchmarkFigure5ChooseRefreshTime(b *testing.B) {
	items, _ := stockInstance(90)
	for _, eps := range []float64{0.1, 0.08, 0.06, 0.04, 0.02, 0.01} {
		b.Run(fmt.Sprintf("eps=%.2f", eps), func(b *testing.B) {
			var cost float64
			for i := 0; i < b.N; i++ {
				sol := knapsack.Approx(items, 100, eps)
				cost = sol.Profit
			}
			_ = cost
		})
	}
}

// BenchmarkFigure5RefreshCost reports the right axis of Figure 5 as a
// custom metric (refresh-cost) per ε.
func BenchmarkFigure5RefreshCost(b *testing.B) {
	items, quotes := stockInstance(90)
	var total float64
	for _, q := range quotes {
		total += q.Cost
	}
	for _, eps := range []float64{0.1, 0.04, 0.01} {
		b.Run(fmt.Sprintf("eps=%.2f", eps), func(b *testing.B) {
			var sol knapsack.Solution
			for i := 0; i < b.N; i++ {
				sol = knapsack.Approx(items, 100, eps)
			}
			b.ReportMetric(total-sol.Profit, "refresh-cost")
		})
	}
}

// BenchmarkFigure6Tradeoff regenerates Figure 6: total refresh cost versus
// precision constraint R at ε = 0.1 — the precision-performance curve.
// The refresh-cost metric decreases monotonically as R grows.
func BenchmarkFigure6Tradeoff(b *testing.B) {
	items, quotes := stockInstance(90)
	var total float64
	for _, q := range quotes {
		total += q.Cost
	}
	for _, r := range []float64{0, 25, 50, 75, 100, 125, 140} {
		b.Run(fmt.Sprintf("R=%.0f", r), func(b *testing.B) {
			var sol knapsack.Solution
			for i := 0; i < b.N; i++ {
				sol = knapsack.Approx(items, r, 0.1)
			}
			b.ReportMetric(total-sol.Profit, "refresh-cost")
		})
	}
}

// BenchmarkKnapsackSolvers is ablation E5: exact DP vs FPTAS vs greedy on
// the stock instance.
func BenchmarkKnapsackSolvers(b *testing.B) {
	items, _ := stockInstance(90)
	b.Run("exact-dp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := knapsack.ExactDP(items, 100); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("approx-0.1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			knapsack.Approx(items, 100, 0.1)
		}
	})
	b.Run("greedy-density", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			knapsack.GreedyDensity(items, 100)
		}
	})
	b.Run("greedy-uniform", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			knapsack.GreedyUniform(items, 100)
		}
	})
}

// BenchmarkChooseRefresh measures CHOOSE_REFRESH for each aggregate over
// the stock table (no predicate), the per-aggregate complexity analysis of
// sections 5–6.
func BenchmarkChooseRefresh(b *testing.B) {
	quotes := workload.StockDay(90, experiment.DefaultSeed)
	tab := workload.StockTable(quotes)
	price := tab.Schema().MustLookup("price")
	initial := aggregate.Eval(tab, price, aggregate.Sum, nil)
	r := initial.Width() / 10
	for _, fn := range []aggregate.Func{aggregate.Min, aggregate.Max, aggregate.Sum, aggregate.Avg} {
		b.Run(fn.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := refresh.Choose(tab, price, fn, nil, r, refresh.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkChooseRefreshWithPredicate measures the section 6 algorithms
// including classification and the Appendix F AVG reduction.
func BenchmarkChooseRefreshWithPredicate(b *testing.B) {
	quotes := workload.StockDay(90, experiment.DefaultSeed)
	tab := workload.StockTable(quotes)
	price := tab.Schema().MustLookup("price")
	p := predicate.NewCmp(predicate.Column(price, "price"), predicate.Gt, predicate.Const(100))
	for _, fn := range []aggregate.Func{aggregate.Min, aggregate.Sum, aggregate.Count, aggregate.Avg} {
		b.Run(fn.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := refresh.Choose(tab, price, fn, p, 20, refresh.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBoundedAnswer measures bounded-answer computation per aggregate
// (steps 1/3 of query execution), including the tight Appendix E AVG.
func BenchmarkBoundedAnswer(b *testing.B) {
	quotes := workload.StockDay(1000, experiment.DefaultSeed)
	tab := workload.StockTable(quotes)
	price := tab.Schema().MustLookup("price")
	p := predicate.NewCmp(predicate.Column(price, "price"), predicate.Gt, predicate.Const(100))
	for _, fn := range []aggregate.Func{aggregate.Min, aggregate.Max, aggregate.Sum, aggregate.Count, aggregate.Avg} {
		b.Run(fn.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				aggregate.Eval(tab, price, fn, p)
			}
		})
	}
	b.Run("AVG-loose", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			aggregate.EvalLooseAvg(tab, price, p)
		}
	})
}

// BenchmarkClassify measures T+/T?/T− classification throughput.
func BenchmarkClassify(b *testing.B) {
	quotes := workload.StockDay(1000, experiment.DefaultSeed)
	tab := workload.StockTable(quotes)
	price := tab.Schema().MustLookup("price")
	p := predicate.NewAnd(
		predicate.NewCmp(predicate.Column(price, "price"), predicate.Gt, predicate.Const(60)),
		predicate.NewCmp(predicate.Column(price, "price"), predicate.Lt, predicate.Const(180)),
	)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		predicate.Classify(tab, p)
	}
}

// BenchmarkBTreeIndex measures the sublinear index primitives the paper's
// complexity analysis assumes (sections 5.1, 6.3, 8.3).
func BenchmarkBTreeIndex(b *testing.B) {
	bt := relation.NewBTree(16)
	for i := 0; i < 100000; i++ {
		bt.Insert(float64(i%1000)+float64(i)/1e6, int64(i))
	}
	b.Run("insert-delete", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			k := float64(i % 1000)
			bt.Insert(k, int64(1e9+i))
			bt.Delete(k, int64(1e9+i))
		}
	})
	b.Run("min", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bt.Min()
		}
	})
	b.Run("keys-less", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			count := 0
			bt.AscendLess(5, func(float64, int64) bool { count++; return true })
		}
	})
}

// BenchmarkJoinPlanners is extension E9: the two join refresh planners.
func BenchmarkJoinPlanners(b *testing.B) {
	mkSpec := func(left *relation.Table) join.Spec {
		return join.Spec{
			Agg:     aggregate.Sum,
			AggSide: join.Right, AggColumn: 1,
			Pred: predicate.NewAnd(
				predicate.NewCmp(predicate.Column(0, "node"), predicate.Eq,
					predicate.Column(join.ShiftColumn(left.Schema(), 0), "from")),
				predicate.NewCmp(predicate.Column(1, "load"), predicate.Gt, predicate.Const(50)),
			),
			Within: math.Inf(1),
		}
	}
	left, right, _, _ := benchJoinTables(10)
	spec := mkSpec(left)
	b.Run("eval", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			join.Eval(left, right, spec)
		}
	})
	spec.Within = 5
	b.Run("batch-greedy-plan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := join.BatchGreedy(left, right, spec); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEndToEndQuery measures the full three-step execution over a
// fresh cache each iteration (table clone included, subtracted via timer).
func BenchmarkEndToEndQuery(b *testing.B) {
	quotes := workload.StockDay(90, experiment.DefaultSeed)
	master := workload.StockMaster(quotes)
	for _, r := range []float64{1000, 100, 0} {
		b.Run(fmt.Sprintf("R=%.0f", r), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				tab := workload.StockTable(quotes)
				proc := newBenchProcessor(tab, master)
				b.StartTimer()
				q := benchQuery(r)
				if _, err := proc.Execute(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkIndexedVsScanMin is ablation E11: CHOOSE_REFRESH(MIN) via O(n)
// scan versus B-tree endpoint indexes (sections 5.1 and 8.3).
func BenchmarkIndexedVsScanMin(b *testing.B) {
	for _, n := range []int{100, 10000} {
		quotes := workload.StockDay(n, experiment.DefaultSeed)
		tab := workload.StockTable(quotes)
		price := tab.Schema().MustLookup("price")
		lower := relation.NewIndex(tab, price, relation.LowerEndpoint)
		upper := relation.NewIndex(tab, price, relation.UpperEndpoint)
		b.Run(fmt.Sprintf("scan/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := refresh.Choose(tab, price, aggregate.Min, nil, 5, refresh.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("indexed/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := refresh.ChooseMinIndexed(tab, lower, upper, 5); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBoundedMedian is extension E12: the bounded k-th order
// statistic (section 8.1).
func BenchmarkBoundedMedian(b *testing.B) {
	quotes := workload.StockDay(1000, experiment.DefaultSeed)
	tab := workload.StockTable(quotes)
	price := tab.Schema().MustLookup("price")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		quantile.Median(tab, price)
	}
}

// BenchmarkIterativeVsBatch is ablation E10: the two execution modes for
// a SUM query at a mid constraint (table rebuild excluded via timers).
func BenchmarkIterativeVsBatch(b *testing.B) {
	quotes := workload.StockDay(90, experiment.DefaultSeed)
	master := workload.StockMaster(quotes)
	b.Run("batch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			proc := newBenchProcessor(workload.StockTable(quotes), master)
			b.StartTimer()
			if _, err := proc.Execute(benchQuery(500)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("iterative", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			proc := newBenchProcessor(workload.StockTable(quotes), master)
			b.StartTimer()
			if _, err := proc.ExecuteIterative(benchQuery(500)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// benchJoinTables builds deterministic join tables sized n per side.
func benchJoinTables(n int) (*relation.Table, *relation.Table, workload.MapOracle, workload.MapOracle) {
	ls := relation.NewSchema(
		relation.Column{Name: "node", Kind: relation.Exact},
		relation.Column{Name: "load", Kind: relation.Bounded},
	)
	rs := relation.NewSchema(
		relation.Column{Name: "from", Kind: relation.Exact},
		relation.Column{Name: "latency", Kind: relation.Bounded},
	)
	left, right := relation.NewTable(ls), relation.NewTable(rs)
	lm, rm := workload.MapOracle{}, workload.MapOracle{}
	for i := 0; i < n; i++ {
		lo := 30 + float64((i*37)%40)
		left.MustInsert(relation.Tuple{
			Key: int64(i + 1),
			Bounds: []interval.Interval{
				interval.Point(float64(i % 5)), interval.New(lo, lo+10),
			},
			Cost: 1 + float64(i%9),
		})
		lm[int64(i+1)] = []float64{lo + 3}
		llo := 1 + float64((i*13)%8)
		right.MustInsert(relation.Tuple{
			Key: int64(100 + i),
			Bounds: []interval.Interval{
				interval.Point(float64(i % 5)), interval.New(llo, llo+4),
			},
			Cost: 1 + float64((i*3)%9),
		})
		rm[int64(100+i)] = []float64{llo + 2}
	}
	return left, right, lm, rm
}

// newBenchProcessor registers the stock table for end-to-end benchmarks.
func newBenchProcessor(tab *relation.Table, master workload.MapOracle) *query.Processor {
	proc := query.NewProcessor(refresh.Options{Epsilon: 0.1})
	proc.Register("stocks", tab, master)
	return proc
}

// benchQuery builds the standard SUM(price) query at precision r.
func benchQuery(r float64) query.Query {
	q := query.NewQuery("stocks", aggregate.Sum, "price")
	q.Within = r
	return q
}
