package trapp_test

// Regression test for the Close lifecycle: after System.Close, every
// execution and subscription entry point must return the typed
// ErrClosed instead of racing the continuous engine's teardown (the old
// behavior was undefined: Execute kept working while the engine's
// goroutines shut down under it). Runs race-clean with Close racing
// in-flight executions.

import (
	"context"
	"errors"
	"sync"
	"testing"

	"trapp"
)

func TestCloseThenExecuteReturnsErrClosed(t *testing.T) {
	sys, _ := buildStressSystem(t)
	q := trapp.NewQuery("vals", trapp.Sum, "value")
	q.Within = 10

	// A live subscription so Close actually tears the engine down.
	sub, err := sys.Subscribe(q)
	if err != nil {
		t.Fatal(err)
	}
	_ = sub

	sys.Close()
	sys.Close() // idempotent

	if _, err := sys.ExecuteCtx(context.Background(), q); !errors.Is(err, trapp.ErrClosed) {
		t.Errorf("ExecuteCtx after Close: err = %v, want ErrClosed", err)
	}
	if _, err := sys.ExecuteBatch(context.Background(), []trapp.Query{q}); !errors.Is(err, trapp.ErrClosed) {
		t.Errorf("ExecuteBatch after Close: err = %v, want ErrClosed", err)
	}
	if _, err := sys.Subscribe(q); !errors.Is(err, trapp.ErrClosed) {
		t.Errorf("Subscribe after Close: err = %v, want ErrClosed", err)
	}
	if _, err := sys.SubscribeCtx(context.Background(), q); !errors.Is(err, trapp.ErrClosed) {
		t.Errorf("SubscribeCtx after Close: err = %v, want ErrClosed", err)
	}
	//lint:ignore SA1019 the deprecated wrapper must surface ErrClosed too
	if _, err := sys.Execute(q); !errors.Is(err, trapp.ErrClosed) {
		t.Errorf("Execute after Close: err = %v, want ErrClosed", err)
	}
}

func TestCloseRacingExecutions(t *testing.T) {
	// Close while clients are mid-flight: every call either completes
	// normally or reports ErrClosed; nothing panics, nothing races.
	sys, _ := buildStressSystem(t)
	q := trapp.NewQuery("vals", trapp.Sum, "value")
	q.Within = 5
	if _, err := sys.Subscribe(q); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	start := make(chan struct{})
	for cl := 0; cl < 8; cl++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < 200; i++ {
				if _, err := sys.ExecuteCtx(context.Background(), q); err != nil {
					if !errors.Is(err, trapp.ErrClosed) {
						t.Errorf("racing ExecuteCtx: %v", err)
					}
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		sys.Close()
	}()
	close(start)
	wg.Wait()
}

func TestSubscribeCtxClosesOnCancel(t *testing.T) {
	sys, _ := buildStressSystem(t)
	defer sys.Close()
	q := trapp.NewQuery("vals", trapp.Sum, "value")
	q.Within = 50

	ctx, cancel := context.WithCancel(context.Background())
	sub, err := sys.SubscribeCtx(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	// The subscription channel must close (drain pending updates first).
	for range sub.Updates() {
	}
}
