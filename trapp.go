// Package trapp is a Go implementation of TRAPP (Tradeoff in Replication
// Precision and Performance), the replication system of Olston and Widom,
// "Offering a Precision-Performance Tradeoff for Aggregation Queries over
// Replicated Data" (VLDB 2000).
//
// TRAPP caches store guaranteed bounds [L, H] on remote master values
// instead of stale exact copies. Aggregation queries carry a quantitative
// precision constraint R, and the system combines cached bounds with a
// minimum-cost set of refreshes from remote sources to return an interval
// answer that is guaranteed to contain the precise answer and is no wider
// than R — giving each query fine-grained control over the tradeoff
// between precision and performance.
//
// # Quick start
//
//	sys := trapp.NewSystem(trapp.Options{})
//	src, _ := sys.AddSource("sensors", nil)
//	cache, _ := sys.AddCache("monitor", schema)
//	src.AddObject(1, []float64{42}, 3 /* refresh cost */, trapp.NewAdaptiveWidth(1))
//	cache.Subscribe(src, 1, []float64{1})
//	sys.Mount("readings", cache)
//
//	q, _ := trapp.ParseQuery("SELECT AVG(value) WITHIN 5 FROM readings", sys)
//	res, _ := sys.ExecuteCtx(ctx, q)
//	fmt.Println(res.Answer) // e.g. [40.5, 45.5], guaranteed to contain the true AVG
//
// ExecuteCtx honors cancellation and deadlines at every phase boundary
// and takes per-request options: WithDeadline, WithCostBudget (the
// cost-bounded dual — "the narrowest answer for ≤ B units of refresh
// cost"), WithSolver, and WithMode (the precise/imprecise extremes as
// options over one path). Failures are typed: ErrUnknownTable,
// ErrPrecisionUnmet{Achieved, Spent}, ErrBudgetExhausted, ErrClosed —
// all usable with errors.Is / errors.As. ExecuteBatch executes many
// queries with one deduped refresh round per table, paying for shared
// tuples once.
//
// A System is safe for concurrent use: any number of goroutines may
// Execute queries while sources apply updates. Cached relations are
// sharded with per-shard locks: scans share shard read locks (a source
// push blocks only scans of the shard owning the pushed key), answers are
// folded in streaming passes with no per-query materialization, and the
// refresh phase is fanned out per source as parallel batched requests.
//
// The package re-exports the user-facing API of the internal packages; see
// the examples directory for complete programs and DESIGN.md for the
// architecture and the concurrency model.
package trapp

import (
	"time"

	"trapp/internal/aggregate"
	"trapp/internal/boundfn"
	"trapp/internal/cache"
	"trapp/internal/continuous"
	"trapp/internal/interval"
	"trapp/internal/netsim"
	"trapp/internal/obs"
	"trapp/internal/predicate"
	"trapp/internal/query"
	"trapp/internal/refresh"
	"trapp/internal/relation"
	"trapp/internal/server"
	"trapp/internal/source"
	"trapp/internal/sql"
	itrapp "trapp/internal/trapp"
)

// Interval is a closed interval [Lo, Hi]; bounded answers and cached
// bounds are Intervals.
type Interval = interval.Interval

// NewInterval returns the interval [lo, hi].
func NewInterval(lo, hi float64) Interval { return interval.New(lo, hi) }

// Point returns the degenerate interval [v, v].
func Point(v float64) Interval { return interval.Point(v) }

// Schema describes a cached table's columns.
type Schema = relation.Schema

// Column describes one attribute.
type Column = relation.Column

// Exact marks attributes whose values the cache knows precisely.
const Exact = relation.Exact

// Bounded marks replicated attributes cached as guaranteed bounds.
const Bounded = relation.Bounded

// NewSchema builds a schema.
func NewSchema(cols ...Column) *Schema { return relation.NewSchema(cols...) }

// Table is a cached relation of bounded tuples.
type Table = relation.Table

// Tuple is one cached row.
type Tuple = relation.Tuple

// NewTable returns an empty table with the given schema.
func NewTable(s *Schema) *Table { return relation.NewTable(s) }

// Func identifies an aggregation function.
type Func = aggregate.Func

// Aggregation functions supported by TRAPP/AG.
const (
	Min   = aggregate.Min
	Max   = aggregate.Max
	Sum   = aggregate.Sum
	Count = aggregate.Count
	Avg   = aggregate.Avg
)

// Expr is a selection predicate over bounded tuples.
type Expr = predicate.Expr

// PredColumn references a column in a predicate.
func PredColumn(col int, name string) predicate.Operand { return predicate.Column(col, name) }

// PredConst embeds a constant in a predicate.
func PredConst(v float64) predicate.Operand { return predicate.Const(v) }

// Comparison operators.
const (
	Lt = predicate.Lt
	Le = predicate.Le
	Gt = predicate.Gt
	Ge = predicate.Ge
	Eq = predicate.Eq
	Ne = predicate.Ne
)

// NewCmp builds a comparison predicate.
func NewCmp(left predicate.Operand, op predicate.Op, right predicate.Operand) Expr {
	return predicate.NewCmp(left, op, right)
}

// NewAnd builds a conjunction.
func NewAnd(l, r Expr) Expr { return predicate.NewAnd(l, r) }

// NewOr builds a disjunction.
func NewOr(l, r Expr) Expr { return predicate.NewOr(l, r) }

// NewNot builds a negation.
func NewNot(e Expr) Expr { return predicate.NewNot(e) }

// Query is a TRAPP/AG aggregation query with a precision constraint.
type Query = query.Query

// Result reports a bounded query execution.
type Result = query.Result

// NewQuery returns an unconstrained query (R = +Inf).
func NewQuery(table string, agg Func, column string) Query {
	return query.NewQuery(table, agg, column)
}

// ExecOption customizes one ExecuteCtx / ExecuteBatch / SubscribeCtx
// request: deadline, cost budget, solver, mode.
type ExecOption = query.ExecOption

// Mode positions a request on the precision-performance dial of
// Figure 1(a); see WithMode.
type Mode = query.Mode

// Request modes.
const (
	// ModeBounded honors the query's own precision constraint (default).
	ModeBounded = query.ModeBounded
	// ModePrecise forces R = 0: refresh until the answer is exact.
	ModePrecise = query.ModePrecise
	// ModeImprecise forces R = +Inf: answer from cached bounds only.
	ModeImprecise = query.ModeImprecise
)

// WithDeadline bounds a request's wall-clock time; past it, the request
// returns the best interval achieved so far (with ErrPrecisionUnmet if
// the constraint is still unmet) instead of blocking.
func WithDeadline(t time.Time) ExecOption { return query.WithDeadline(t) }

// WithCostBudget switches the request to the cost-bounded dual of
// CHOOSE_REFRESH: spend at most b units of refresh cost, maximizing the
// guaranteed width reduction — "the narrowest answer you can give me
// for ≤ b".
func WithCostBudget(b float64) ExecOption { return query.WithCostBudget(b) }

// WithSolver overrides the knapsack solver for one request.
func WithSolver(s Solver) ExecOption { return query.WithSolver(s) }

// WithMode positions one request on the precision-performance dial,
// subsuming the deprecated PreciseMode/ImpreciseMode entry points.
func WithMode(m Mode) ExecOption { return query.WithMode(m) }

// WithTrace records a span tree through the request's phases (cache
// sync, scan, CHOOSE_REFRESH, per-source refresh fan-out with wire wait
// vs commit, final fold), returned on Result.Trace. Each span carries
// wall time and the refresh cost it charged; Trace.TotalCost() equals
// Result.RefreshCost bit-exactly. The SQL dialect exposes the same
// trace as EXPLAIN ANALYZE SELECT ... over the HTTP server.
func WithTrace() ExecOption { return query.WithTrace() }

// Trace is the per-request span tree recorded by WithTrace.
type Trace = obs.Trace

// TraceSnapshot is the immutable, wire-ready form of a Trace; its
// String method renders the EXPLAIN ANALYZE tree.
type TraceSnapshot = obs.TraceSnapshot

// SpanSnapshot is one node of a TraceSnapshot's span tree.
type SpanSnapshot = obs.SpanSnapshot

// EngineMetrics is the always-on histogram set of the engine: per-phase
// request latency, refresh batch sizes, achieved-width and
// cost-per-precision telemetry, continuous-engine repair latency.
// Access it with System.Metrics().
type EngineMetrics = obs.EngineMetrics

// HistogramSnapshot is a point-in-time copy of one lock-free histogram.
type HistogramSnapshot = obs.HistogramSnapshot

// WidthTelemetry summarizes one source's adaptive-width controller
// state; see System.WidthTelemetry.
type WidthTelemetry = source.WidthTelemetry

// Typed errors of the request path, usable with errors.Is / errors.As.
var (
	// ErrClosed is returned by ExecuteCtx/ExecuteBatch/Subscribe after
	// System.Close.
	ErrClosed = query.ErrClosed
	// ErrUnknownTable is returned for queries against unmounted tables.
	ErrUnknownTable = query.ErrUnknownTable
	// ErrUnknownColumn is returned for unknown aggregation columns.
	ErrUnknownColumn = query.ErrUnknownColumn
	// ErrNoOracle is returned when a query needs refreshes but the table
	// has no refresh oracle.
	ErrNoOracle = query.ErrNoOracle
)

// ErrPrecisionUnmet reports a request cut short by cancellation or
// deadline expiry before its precision constraint was reached; it
// carries the best achieved interval and the cost spent, and unwraps to
// the context error.
type ErrPrecisionUnmet = query.ErrPrecisionUnmet

// ErrBudgetExhausted reports a cost-budgeted request that spent its
// budget without reaching the query's finite precision constraint.
type ErrBudgetExhausted = query.ErrBudgetExhausted

// SQLError is a positioned SQL parse error; every ParseQuery /
// ParseQueries failure is one (use errors.As to recover the position).
type SQLError = sql.Error

// Options tunes CHOOSE_REFRESH (knapsack solver and ε) and execution
// parallelism (Parallelism: workers for large aggregation scans).
type Options = refresh.Options

// Solver selects a knapsack algorithm.
type Solver = refresh.Solver

// Knapsack solver choices.
const (
	Auto                = refresh.Auto
	SolverExactDP       = refresh.SolverExactDP
	SolverApprox        = refresh.SolverApprox
	SolverGreedyUniform = refresh.SolverGreedyUniform
	SolverGreedyDensity = refresh.SolverGreedyDensity
)

// System is a complete simulated TRAPP deployment: sources, caches, a
// shared clock, traffic accounting, and a query processor.
type System = itrapp.System

// NewSystem creates an empty system.
func NewSystem(opts Options) *System { return itrapp.NewSystem(opts) }

// Source owns master values and runs the refresh monitor.
type Source = source.Source

// Cache stores bounds and serves bounded queries.
type Cache = cache.Cache

// WALOptions configures a durable cache's write-ahead log (Commit
// durability mode and the auto-checkpoint byte threshold).
type WALOptions = relation.WALOptions

// WAL durability modes for WALOptions.Sync.
const (
	// SyncGroup makes every committed mutation durable via batched fsync.
	SyncGroup = relation.SyncGroup
	// SyncNever skips fsync on commit; a crash loses the OS write-back
	// window but recovery still replays the valid prefix exactly.
	SyncNever = relation.SyncNever
)

// Recovery reports what a durable cache reconstructed at open: the
// snapshot generation, records replayed, torn tails tolerated, and how
// many tuples were re-widened to the conservative bound floor.
type Recovery = cache.Recovery

// Open assembles a durable single-table system over a data directory:
// every cache mutation is logged through a per-shard group-committed
// WAL with periodic compacted snapshots, and reopening the directory
// recovers the cached state — values bit-identical, bounds conservatively
// collapsed to [-Inf, +Inf] until their sources re-promise them (add the
// sources, then call System.Rehandshake). A crash can therefore never
// manufacture precision. Close with System.CloseDurable.
func Open(dir, table string, schema *Schema, opts Options, wopts WALOptions) (*System, *Cache, Recovery, error) {
	return itrapp.Open(dir, table, schema, opts, wopts)
}

// Stats aggregates refresh traffic counters.
type Stats = netsim.Stats

// WidthPolicy chooses bound width parameters (Appendix A).
type WidthPolicy = boundfn.WidthPolicy

// StaticWidth is a fixed bound width policy.
type StaticWidth = boundfn.StaticWidth

// AdaptiveWidth widens bounds on value-initiated refreshes and narrows
// them on query-initiated refreshes.
type AdaptiveWidth = boundfn.AdaptiveWidth

// NewAdaptiveWidth returns an adaptive width policy starting at w.
func NewAdaptiveWidth(w float64) *AdaptiveWidth { return boundfn.NewAdaptiveWidth(w) }

// Bound shapes for time-varying bounds.
type (
	// SqrtShape grows bounds like √(T−Tr), the paper's default.
	SqrtShape = boundfn.SqrtShape
	// LinearShape grows bounds linearly.
	LinearShape = boundfn.LinearShape
	// ConstantShape keeps a fixed width after refresh.
	ConstantShape = boundfn.ConstantShape
)

// Monitor is a continuous bounded query whose precision constraint is
// re-established on every Poll, paying for refreshes only when cached
// bounds have grown past the constraint (§8.1). It is a poll-style
// adapter over the push-based subscription engine; new code should use
// System.Subscribe.
type Monitor = itrapp.Monitor

// Subscription is a push-based standing query registered with
// System.Subscribe: the engine maintains its bounded answer
// incrementally and delivers Updates when the answer moves or the
// precision constraint's status changes.
type Subscription = continuous.Subscription

// Update is one pushed notification from a Subscription.
type Update = continuous.Update

// SubscriptionStats is a snapshot of one subscription's accounting.
type SubscriptionStats = continuous.Stats

// SubscriptionMetrics snapshots the continuous engine's counters
// (maintenance rounds, notifications, shared refresh traffic).
type SubscriptionMetrics = continuous.Metrics

// GroupRow is one group's result in a GROUP BY query (§8.1 extension).
type GroupRow = query.GroupRow

// GroupAnswer is one group's maintained answer in a GROUP BY
// subscription.
type GroupAnswer = continuous.GroupAnswer

// Processor executes bounded queries over directly registered tables,
// without the source/cache architecture — useful for embedding TRAPP/AG
// query processing over an existing store, and for reproducing the
// paper's worked examples over fixed cached bounds.
type Processor = query.Processor

// Oracle supplies exact master values during query-initiated refreshes.
type Oracle = query.Oracle

// NewProcessor returns an empty query processor.
func NewProcessor(opts Options) *Processor { return query.NewProcessor(opts) }

// ParseQueryWith compiles a query against an explicit table→schema
// catalog instead of a System's mounted tables.
func ParseQueryWith(src string, schemas map[string]*Schema) (Query, error) {
	return sql.Parse(src, sql.MapCatalog(schemas))
}

// ParseQuery compiles the TRAPP/AG SQL dialect
// (SELECT AGG(col) WITHIN R FROM table WHERE pred) against the tables
// mounted on the system. Statements selecting several aggregates are
// rejected; use ParseQueries.
func ParseQuery(src string, sys *System) (Query, error) {
	return sql.Parse(src, sys.Catalog())
}

// Statement is one parsed SQL statement: the queries of its SELECT
// list plus whether it carried an EXPLAIN ANALYZE prefix.
type Statement = sql.Statement

// ParseStatement compiles one statement against the tables mounted on
// the system, accepting an optional EXPLAIN ANALYZE prefix. Execute an
// explained statement's queries with WithTrace and render or serialize
// Result.Trace; plain statements behave exactly like ParseQueries.
func ParseStatement(src string, sys *System) (Statement, error) {
	return sql.ParseStatement(src, sys.Catalog())
}

// ParseQueries compiles a statement that may select several aggregates
// in one SELECT list (SELECT MIN(v), MAX(v) WITHIN 5 FROM t), producing
// one query per select item sharing the constraint, table, predicate
// and grouping. Execute the result with System.ExecuteBatch, which
// shares one classification scan per shape and one deduped refresh
// round across the statement.
func ParseQueries(src string, sys *System) ([]Query, error) {
	return sql.ParseAll(src, sys.Catalog())
}

// ParseQueriesWith is ParseQueries against an explicit table→schema
// catalog.
func ParseQueriesWith(src string, schemas map[string]*Schema) ([]Query, error) {
	return sql.ParseAll(src, sql.MapCatalog(schemas))
}

// Server is the HTTP/JSON service layer over a System: POST /query
// (single statements and ';'-separated batches with per-request
// deadline/budget/mode/solver), GET /subscribe (server-sent-events
// streams backed by SubscribeCtx), /metrics and /healthz, with
// admission control and graceful drain. cmd/trappserver is the
// standalone binary; embed a Server to serve an existing System.
// DESIGN.md §10 documents the wire protocol.
type Server = server.Server

// ServerConfig tunes a Server's admission control (max in-flight
// requests, max subscribers, per-client refresh-cost budget).
type ServerConfig = server.Config

// NewServer wraps a System with the HTTP service layer. The server does
// not own the system: Shutdown drains HTTP work; close the system
// separately.
func NewServer(sys *System, cfg ServerConfig) *Server { return server.New(sys, cfg) }
