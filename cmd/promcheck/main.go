// Command promcheck validates a Prometheus text-format exposition —
// the CI gate for trappserver's /metrics.prom. It reads the exposition
// from stdin, or fetches it when given an http(s) URL argument, and
// exits non-zero on the first violation: samples without a preceding
// TYPE declaration, malformed names or labels, histogram families
// whose buckets are not cumulative or whose +Inf bucket disagrees with
// _count.
//
//	trappserver -addr :7090 &
//	promcheck http://localhost:7090/metrics.prom
//	curl -s http://localhost:7090/metrics.prom | promcheck
package main

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"trapp/internal/obs"
)

func main() {
	var in io.Reader = os.Stdin
	src := "stdin"
	if len(os.Args) > 1 {
		arg := os.Args[1]
		if !strings.HasPrefix(arg, "http://") && !strings.HasPrefix(arg, "https://") {
			fmt.Fprintf(os.Stderr, "usage: promcheck [url]   (or pipe the exposition to stdin)\n")
			os.Exit(2)
		}
		client := &http.Client{Timeout: 10 * time.Second}
		resp, err := client.Get(arg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "promcheck: fetch %s: %v\n", arg, err)
			os.Exit(1)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			fmt.Fprintf(os.Stderr, "promcheck: fetch %s: status %d\n", arg, resp.StatusCode)
			os.Exit(1)
		}
		in, src = resp.Body, arg
	}
	if err := obs.ValidateProm(in); err != nil {
		fmt.Fprintf(os.Stderr, "promcheck: %s: %v\n", src, err)
		os.Exit(1)
	}
	fmt.Printf("promcheck: %s: ok\n", src)
}
