// Command trappserver serves a TRAPP system over HTTP — the network
// service layer of the client/server scenario the paper assumes (many
// clients, many replicated sources, one precision-performance engine in
// between). It builds the benchmarks' link-monitoring workload
// (experiment.BuildLinkSystem) — or, with -objects, the adversarial
// multi-tenant scale workload (experiment.BuildScaleSystem) that
// `trappbench -scale -remote` drives — and exposes:
//
//	POST /query      execute SQL (single or ';'-separated batch); body
//	                 {"sql": ..., "deadline_ms", "budget", "mode",
//	                 "solver", "trace"}; EXPLAIN ANALYZE SELECT ...
//	                 attaches the execution trace to the result
//	GET  /subscribe  server-sent-events stream of a standing query
//	GET  /metrics    QPS, refresh traffic (incl. per-source), admission,
//	                 engine phase histograms, precision–cost telemetry
//	GET  /metrics.prom  the same in Prometheus text format
//	GET  /healthz    liveness + build info + workload descriptor
//
// Admission control: -maxinflight caps concurrent queries (429 past
// it), -clientbudget meters each client's cumulative refresh cost
// (budget-exhausted semantics once spent). -drive animates the workload
// (random-walk pushes + clock ticks); leave it off to serve a static
// system, which is what `trappbench -remote ... -verify N` requires to
// check wire answers bit-identical against a local mirror.
//
// Observability: -slowquery enables the structured slow-query log on
// stderr, -pprof mounts /debug/pprof for live profiling.
//
// Durability: -data names a WAL + snapshot directory for the link
// workload (plain or -partition; each partition process gets its own
// directory). Restarting against the same directory recovers the cached
// values bit-identically while every bound conservatively re-widens
// until its source re-promises it — a crash never manufactures
// precision. /healthz reports the recovery (records replayed, torn
// tails, tuples re-widened, value digest) under "recovery".
//
// SIGINT/SIGTERM drain gracefully: streams are closed, in-flight
// requests finish, then the engine shuts down.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"math/rand"
	gonet "net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"trapp/internal/cache"
	"trapp/internal/experiment"
	"trapp/internal/partition"
	"trapp/internal/relation"
	"trapp/internal/server"
	itrapp "trapp/internal/trapp"
	"trapp/internal/workload"
)

func main() {
	addr := flag.String("addr", ":7090", "listen address")
	framedAddr := flag.String("framed", ":7091", "framed binary-protocol listen address (empty: disabled); the bound port is published as framed_port in /healthz")
	links := flag.Int("links", 90, "number of monitored links (objects)")
	sources := flag.Int("sources", 8, "number of data sources")
	objects := flag.Int("objects", 0, "serve the adversarial scale workload with this many objects across -tenants tables instead of the link workload")
	tenants := flag.Int("tenants", 32, "tenant tables for the -objects scale workload")
	zipfu := flag.Float64("zipfu", 1.2, "Zipf exponent of the -drive update skew in scale mode")
	seed := flag.Int64("seed", experiment.DefaultSeed, "workload seed")
	maxInFlight := flag.Int("maxinflight", 0, "max concurrent /query requests (0: unlimited)")
	maxSubs := flag.Int("maxsubs", 0, "max concurrent /subscribe streams (0: unlimited)")
	clientBudget := flag.Float64("clientbudget", 0, "per-client cumulative refresh-cost ceiling (0: unlimited)")
	drive := flag.Duration("drive", 0, "animate the workload: random-walk pushes + a clock tick every interval (0: static)")
	latency := flag.Duration("latency", 0, "simulated wire latency per refresh transmission")
	slowQuery := flag.Duration("slowquery", 0, "log /query requests slower than this (0: disabled)")
	pprofOn := flag.Bool("pprof", false, "mount /debug/pprof profiling endpoints")
	partSpec := flag.String("partition", "", `serve one partition of an N-way link cluster: "i/N" (0-based); the framed listener then also speaks the partition protocol for trappcoord`)
	dataDir := flag.String("data", "", "durable data directory (WAL + snapshots) for the link workload; restarting with the same directory recovers cached values bit-identically and conservatively re-widens bounds (/healthz reports the recovery under \"recovery\"); give each -partition process its own directory")
	flag.Parse()

	var (
		sys *itrapp.System
		sc  *workload.Scale
		net *workload.Network
		err error

		psvc *partition.Service    // partition mode: coordinator-facing frames
		topo func() map[string]any // partition mode: /healthz topology
		owns = func(int64) bool { return true }

		rec cache.Recovery // -data: what reopening the directory rebuilt
	)
	switch {
	case *partSpec != "":
		if *objects > 0 {
			fmt.Fprintln(os.Stderr, "trappserver: -partition and -objects are mutually exclusive")
			os.Exit(1)
		}
		var pi, pn int
		if _, serr := fmt.Sscanf(*partSpec, "%d/%d", &pi, &pn); serr != nil || pi < 0 || pi >= pn {
			fmt.Fprintf(os.Stderr, "trappserver: bad -partition %q (want \"i/N\" with 0 <= i < N)\n", *partSpec)
			os.Exit(1)
		}
		ids := experiment.PartitionIDs(pn)
		var ring *partition.Ring
		if *dataDir != "" {
			sys, net, ring, rec, err = experiment.BuildLinkPartitionDurable(*links, *sources, *seed, ids, pi, *dataDir, relation.WALOptions{})
		} else {
			var systems []*itrapp.System
			systems, net, ring, err = experiment.BuildLinkPartitions(*links, *sources, *seed, ids)
			if err == nil {
				// Placement needs the full ring, but this process serves
				// only its own shard.
				for j, s := range systems {
					if j != pi {
						s.Close()
					}
				}
				sys = systems[pi]
			}
		}
		if err == nil {
			psvc = partition.NewService(partition.NewLocalNode(ids[pi], sys))
			buckets := ring.Buckets(pi)
			owns = func(key int64) bool { return ring.OwnerOfKey(key) == pi }
			topo = func() map[string]any {
				return map[string]any{
					"role":       "partition",
					"id":         ids[pi],
					"partitions": pn,
					"buckets":    buckets,
					"peers":      ids,
				}
			}
		}
	case *objects > 0:
		if *dataDir != "" {
			fmt.Fprintln(os.Stderr, "trappserver: -data is not supported with the -objects scale workload")
			os.Exit(1)
		}
		sys, sc, err = experiment.BuildScaleSystem(*objects, *tenants, *seed)
	case *dataDir != "":
		sys, net, rec, err = experiment.BuildLinkSystemDurable(*links, *sources, *seed, *dataDir, relation.WALOptions{})
	default:
		sys, net, err = experiment.BuildLinkSystem(*links, *sources, *seed)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "trappserver: build workload: %v\n", err)
		os.Exit(1)
	}
	if *latency > 0 {
		sys.Net.SetLatency(*latency)
	}

	info := map[string]any{
		"links":   *links,
		"sources": *sources,
		"seed":    *seed,
		"driven":  *drive > 0,
	}
	if sc != nil {
		// The scale descriptor trappbench -scale -remote discovers via
		// /healthz to rebuild matching samplers and SQL shapes.
		info = map[string]any{
			"objects": *objects,
			"tenants": *tenants,
			"seed":    *seed,
			"driven":  *drive > 0,
		}
	}
	if *partSpec != "" {
		info["partition"] = *partSpec
	}
	if *dataDir != "" {
		// The recovery status /healthz publishes: what reopening the data
		// directory rebuilt, and a bound-independent digest of the
		// recovered values — two restarts over the same directory must
		// report the same digest (the crash-recovery e2e asserts it).
		info["data_dir"] = *dataDir
		info["recovery"] = map[string]any{
			"recovered":        rec.Recovered(),
			"snapshot_gen":     rec.SnapshotGen,
			"logs_replayed":    rec.LogsReplayed,
			"records_replayed": rec.RecordsReplayed,
			"torn_tails":       rec.TornTails,
			"tuples":           rec.Tuples,
			"rewidened":        rec.Rewidened,
			"value_digest":     fmt.Sprintf("%016x", sys.Cache("monitor").Store().ValueDigest()),
		}
		fmt.Printf("trappserver: data dir %s (recovered=%v tuples=%d rewidened=%d torn_tails=%d)\n",
			*dataDir, rec.Recovered(), rec.Tuples, rec.Rewidened, rec.TornTails)
	}
	cfg := server.Config{
		MaxInFlight:    *maxInFlight,
		MaxSubscribers: *maxSubs,
		ClientBudget:   *clientBudget,
		Info:           info,
		SlowQuery:      *slowQuery,
		Logger:         slog.New(slog.NewTextHandler(os.Stderr, nil)),
		EnablePprof:    *pprofOn,
		Topology:       topo,
	}
	if psvc != nil {
		cfg.FramedExt = psvc
	}
	srv := server.New(sys, cfg)

	// The driver animates the sources so subscriptions have something to
	// stream: every interval the logical clock advances one tick (bounds
	// grow, constraints can violate, the continuous engine repairs them)
	// and values take random-walk steps — every link in link mode, a
	// Zipfian-sampled batch of objects in scale mode (stepping the whole
	// 10⁵–10⁶ population each tick would outrun the tick).
	driveCtx, stopDrive := context.WithCancel(context.Background())
	defer stopDrive()
	if *drive > 0 && sc == nil {
		go func() {
			ticker := time.NewTicker(*drive)
			defer ticker.Stop()
			for {
				select {
				case <-driveCtx.Done():
					return
				case <-ticker.C:
					for i, l := range net.Links {
						if !owns(l.Key) {
							continue
						}
						src := sys.Source(fmt.Sprintf("s%d", i%*sources))
						if err := src.SetValue(l.Key, l.Step()); err != nil {
							fmt.Fprintf(os.Stderr, "trappserver: drive: %v\n", err)
							return
						}
					}
					sys.Clock.Advance(1)
				}
			}
		}()
	}
	if *drive > 0 && sc != nil {
		go func() {
			zu, err := workload.NewZipf(*objects, *zipfu)
			if err != nil {
				fmt.Fprintf(os.Stderr, "trappserver: drive: %v\n", err)
				return
			}
			rng := rand.New(rand.NewSource(*seed + 1))
			batch := 2048
			if batch > *objects {
				batch = *objects
			}
			ticker := time.NewTicker(*drive)
			defer ticker.Stop()
			for {
				select {
				case <-driveCtx.Done():
					return
				case <-ticker.C:
					for b := 0; b < batch; b++ {
						o := &sc.Objects[zu.Rank(rng)]
						src := sys.Source(experiment.ScaleSourceFor(o.Key))
						if err := src.SetValue(o.Key, o.Step(rng, 1)); err != nil {
							fmt.Fprintf(os.Stderr, "trappserver: drive: %v\n", err)
							return
						}
					}
					sys.Clock.Advance(1)
				}
			}
		}()
	}

	// The framed listener starts before HTTP so /healthz can publish the
	// bound framed port (trappbench -wire framed discovers it there).
	if *framedAddr != "" {
		fln, err := srv.ListenAndServeFramed(*framedAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "trappserver: listen framed %s: %v\n", *framedAddr, err)
			os.Exit(1)
		}
		if tcp, ok := fln.Addr().(*gonet.TCPAddr); ok {
			info["framed_port"] = tcp.Port
		}
		fmt.Printf("trappserver: framed protocol on %s\n", fln.Addr())
	}

	hs, ln, err := srv.ListenAndServe(*addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "trappserver: listen %s: %v\n", *addr, err)
		os.Exit(1)
	}
	if sc != nil {
		fmt.Printf("trappserver: serving %d objects in %d tenants on http://%s (drive=%v)\n",
			*objects, *tenants, ln.Addr(), *drive)
	} else {
		fmt.Printf("trappserver: serving %d links from %d sources on http://%s (drive=%v)\n",
			*links, *sources, ln.Addr(), *drive)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("trappserver: draining")

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	stopDrive()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "trappserver: drain: %v\n", err)
	}
	_ = hs.Shutdown(ctx)
	if *dataDir != "" {
		// Flush and close the WAL so a clean shutdown leaves no torn tail.
		if err := sys.CloseDurable(); err != nil {
			fmt.Fprintf(os.Stderr, "trappserver: close wal: %v\n", err)
		}
	} else {
		sys.Close()
	}
	fmt.Println("trappserver: bye")
}
