// Command trappbench regenerates the paper's evaluation figures and the
// DESIGN.md ablations as text tables.
//
// Usage:
//
//	trappbench -experiment fig5      # Figure 5: CHOOSE_REFRESH time & cost vs ε
//	trappbench -experiment fig6      # Figure 6: refresh cost vs precision constraint R
//	trappbench -experiment knapsack  # E5: knapsack solver comparison
//	trappbench -experiment adaptive  # E6: adaptive bound-width policies
//	trappbench -experiment avgbound  # E7: tight vs loose AVG bounds
//	trappbench -experiment modes     # E8: imprecise/TRAPP/precise cost per aggregate
//	trappbench -experiment join      # E9: join refresh planners
//	trappbench -experiment all       # everything
//	trappbench -concurrency 8        # E13: closed-loop multi-client throughput
//	trappbench -updaters 4           # E15: mixed read/write throughput (open-loop pushes)
//	trappbench -subscribers 1000     # E14: push subscriptions vs naive poll loop
//	trappbench -budget 20            # E13 with cost-budgeted clients (WithCostBudget)
//	trappbench -batch 64             # E16: one ExecuteBatch vs N sequential ExecuteCtx
//	trappbench -remote host:7090     # E17: E13 clients over HTTP against a live trappserver,
//	                                 # verifying wire answers bit-identical to in-process first
//	trappbench -scale 100000         # E18: adversarial scale workload — Zipf-sized tenants,
//	                                 # Zipfian query/update skew, regime switches (warm →
//	                                 # steady → hot burst → drift) with per-phase reporting;
//	                                 # add -remote to drive a trappserver -objects N instead
//
// Flags -n, -seed, -reps control workload size, reproducibility, and
// timing repetitions. The concurrent benchmark additionally honors
// -duration (measurement window), -warmup (excluded from measurement so
// adaptive widths converge first), and compares against a single-client
// run when -concurrency > 1; the mixed mode honors -pushrate (aggregate
// open-loop pushes/second; 0 = closed-loop) and runs a read-mostly row
// first for contrast; the subscription benchmark honors -rounds.
// -json <path> additionally writes the machine-readable results of the
// concurrent and subscription benchmarks (QPS, latency percentiles,
// refresh traffic) for BENCH_*.json perf-trajectory files
// (BENCH_sharding.json combines a pre-shard baseline run with the
// sharded engine's run of the same E15 workload).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"trapp/internal/experiment"
)

// benchOutput is the -json payload.
type benchOutput struct {
	Name          string                              `json:"name"`
	GeneratedAt   string                              `json:"generated_at"`
	Seed          int64                               `json:"seed"`
	Concurrent    []experiment.ConcurrentResult       `json:"concurrent,omitempty"`
	Subscriptions *experiment.SubscriptionsComparison `json:"subscriptions,omitempty"`
	Batch         *experiment.BatchComparison         `json:"batch,omitempty"`
	Remote        *experiment.RemoteResult            `json:"remote,omitempty"`
	Scale         *experiment.ScaleResult             `json:"scale,omitempty"`
	Cluster       []experiment.ClusterResult          `json:"cluster,omitempty"`
}

var out benchOutput

func main() {
	exp := flag.String("experiment", "all", "which experiment to run (fig5, fig6, knapsack, adaptive, avgbound, modes, join, iter, index, median, concurrent, subscriptions, all)")
	n := flag.Int("n", 90, "number of data objects (the paper used 90 stocks)")
	seed := flag.Int64("seed", experiment.DefaultSeed, "workload seed")
	reps := flag.Int("reps", 25, "timing repetitions per point")
	concurrency := flag.Int("concurrency", 8, "client goroutines for the concurrent benchmark")
	updaters := flag.Int("updaters", 0, "updater goroutines for the mixed read/write concurrent benchmark (0: legacy background sweeper)")
	pushRate := flag.Float64("pushrate", 250000, "aggregate open-loop push rate for the mixed benchmark, pushes/sec (0: closed-loop)")
	duration := flag.Duration("duration", 2*time.Second, "measurement window for the concurrent benchmark")
	warmup := flag.Duration("warmup", time.Second, "warmup before the concurrent benchmark's measurement window")
	subscribers := flag.Int("subscribers", 1000, "standing queries for the subscription benchmark")
	budget := flag.Float64("budget", 0, "per-request cost budget for the concurrent benchmark's clients (0: off)")
	batchN := flag.Int("batch", 64, "queries per batch for the batch-execution benchmark")
	rounds := flag.Int("rounds", 60, "update/tick rounds for the subscription benchmark")
	remoteAddr := flag.String("remote", "", "drive a live trappserver at this address (E13 over HTTP) instead of an in-process system")
	verifyN := flag.Int("verify", 200, "queries to verify bit-identical against a local mirror before the -remote window (0: skip; needs a static server)")
	wire := flag.String("wire", "http", "transport for the -remote window: http (JSON over POST /query) or framed (persistent binary protocol)")
	pipeline := flag.Int("pipeline", 32, "requests in flight per connection on the framed wire")
	scaleN := flag.Int("scale", 100000, "object population for the adversarial scale benchmark")
	tenants := flag.Int("tenants", 32, "tenant tables for the scale benchmark (Zipf-sized)")
	scaleSubs := flag.Int("scalesubs", 200, "standing queries registered during the scale benchmark")
	zipfQ := flag.Float64("zipfq", 1.1, "steady-phase Zipf exponent for query tenant selection")
	zipfU := flag.Float64("zipfu", 1.2, "steady-phase Zipf exponent for update object selection")
	phaseTicks := flag.Int64("phaseticks", 300, "logical-clock ticks per regime phase (100 ticks/s)")
	scalePush := flag.Float64("scalepush", 20000, "baseline aggregate push rate for the scale benchmark, pushes/sec")
	clusterN := flag.Int("cluster", 3, "partitions for the cluster benchmark (E19): closed-loop clients through the scatter-gather coordinator, vs a 1-node cluster baseline")
	jsonPath := flag.String("json", "", "write machine-readable results (concurrent + subscription benchmarks) to this file")
	flag.Parse()

	// `trappbench -concurrency N` / `-subscribers N` alone run the
	// corresponding benchmark.
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	if !explicit["experiment"] {
		switch {
		case explicit["scale"] || explicit["tenants"] || explicit["zipfq"] || explicit["zipfu"] || explicit["phaseticks"]:
			*exp = "scale"
		case explicit["cluster"]:
			*exp = "cluster"
		case explicit["remote"]:
			*exp = "remote"
		case explicit["batch"]:
			*exp = "batch"
		case explicit["subscribers"] || explicit["rounds"]:
			*exp = "subscriptions"
		case explicit["concurrency"] || explicit["updaters"] || explicit["budget"]:
			*exp = "concurrent"
		}
	}

	runners := map[string]func(){
		"remote": func() { remote(*remoteAddr, *concurrency, *verifyN, *duration, *warmup, *wire, *pipeline) },
		"scale": func() {
			scale(*remoteAddr, experiment.ScaleOptions{
				Objects:       *scaleN,
				Tenants:       *tenants,
				Clients:       *concurrency,
				Updaters:      4,
				Subscribers:   *scaleSubs,
				QueryS:        *zipfQ,
				UpdateS:       *zipfU,
				TicksPerPhase: *phaseTicks,
				PushRate:      *scalePush,
				Seed:          *seed,
			})
		},
		"cluster":       func() { cluster(*clusterN, *concurrency, *n, *seed, *duration, *warmup) },
		"concurrent":    func() { concurrent(*concurrency, *updaters, *n, *seed, *duration, *warmup, *pushRate, *budget) },
		"subscriptions": func() { subscriptions(*subscribers, *n, *seed, *rounds) },
		"batch":         func() { batch(*batchN, *n, *seed) },
		"fig5":          func() { fig5(*n, *seed, *reps) },
		"fig6":          func() { fig6(*n, *seed) },
		"knapsack":      func() { solvers(*n, *seed) },
		"adaptive":      func() { adaptive(*seed) },
		"avgbound":      func() { avgBounds(*n, *seed) },
		"modes":         func() { modes(*n, *seed) },
		"join":          func() { joins(*seed) },
		"iter":          func() { iterative(*n, *seed) },
		"index":         func() { indexSpeedup(*seed, *reps) },
		"median":        func() { medians(*n, *seed) },
	}
	order := []string{"fig5", "fig6", "knapsack", "adaptive", "avgbound", "modes", "join", "iter", "index", "median", "concurrent", "subscriptions", "batch"}
	out.Name = *exp
	out.Seed = *seed
	out.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
	if *exp == "all" {
		for _, name := range order {
			runners[name]()
			fmt.Println()
		}
		writeJSON(*jsonPath)
		return
	}
	run, ok := runners[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}
	run()
	writeJSON(*jsonPath)
}

// writeJSON dumps the collected machine-readable results.
func writeJSON(path string) {
	if path == "" {
		return
	}
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "encode -json results: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "write -json results: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", path)
}

func fig5(n int, seed int64, reps int) {
	fmt.Printf("Figure 5 — CHOOSE_REFRESH(SUM) time and refresh cost vs ε (R=100, n=%d)\n", n)
	eps := []float64{0.1, 0.08, 0.06, 0.04, 0.02, 0.01}
	rows := experiment.Figure5(eps, 100, n, seed, reps)
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			fmt.Sprintf("%.2f", r.Epsilon),
			r.ChooseTime.Round(time.Microsecond).String(),
			fmt.Sprintf("%.0f", r.RefreshCost),
		})
	}
	experiment.WriteTable(os.Stdout, []string{"epsilon", "choose-time", "refresh-cost"}, cells)
	fmt.Println("shape check: time grows sharply as ε→0 while cost decreases only slightly;")
	fmt.Println("the paper concludes ε below 0.1 is rarely worthwhile (section 5.2.1).")
}

func fig6(n int, seed int64) {
	fmt.Printf("Figure 6 — precision-performance tradeoff (ε=0.1, n=%d)\n", n)
	var rs []float64
	for r := 0.0; r <= 140; r += 10 {
		rs = append(rs, r)
	}
	rows := experiment.Figure6(rs, 0.1, n, seed)
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			fmt.Sprintf("%.0f", r.R),
			fmt.Sprintf("%.0f", r.RefreshCost),
			fmt.Sprintf("%d", r.Refreshed),
		})
	}
	experiment.WriteTable(os.Stdout, []string{"R", "refresh-cost", "tuples-refreshed"}, cells)
	fmt.Println("shape check: continuous, monotonically decreasing — Figure 1(b) instantiated.")
}

func solvers(n int, seed int64) {
	fmt.Printf("E5 — knapsack solver ablation (R=100, n=%d)\n", n)
	rows := experiment.Solvers(100, n, seed)
	var cells [][]string
	for _, r := range rows {
		opt := ""
		if r.Optimal {
			opt = "yes"
		}
		cells = append(cells, []string{
			r.Name,
			r.Time.Round(time.Microsecond).String(),
			fmt.Sprintf("%.0f", r.RefreshCost),
			opt,
		})
	}
	experiment.WriteTable(os.Stdout, []string{"solver", "time", "refresh-cost", "optimal"}, cells)
}

func adaptive(seed int64) {
	fmt.Println("E6 — adaptive bound width (Appendix A): 20 objects, 120 rounds, query every 5")
	rows := experiment.Adaptive(20, 120, seed)
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Policy,
			fmt.Sprintf("%d", r.ValueRefreshes),
			fmt.Sprintf("%d", r.QueryRefreshes),
			fmt.Sprintf("%d", r.TotalMessages),
		})
	}
	experiment.WriteTable(os.Stdout, []string{"policy", "value-refreshes", "query-refreshes", "total"}, cells)
}

func avgBounds(n int, seed int64) {
	fmt.Printf("E7 — tight (Appendix E) vs loose (§6.4.1) AVG bound widths (n=%d)\n", n)
	rows := experiment.AvgBounds(n, seed)
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			fmt.Sprintf("%.2f", r.Selectivity),
			fmt.Sprintf("%.2f", r.TightWidth),
			fmt.Sprintf("%.2f", r.LooseWidth),
		})
	}
	experiment.WriteTable(os.Stdout, []string{"T+ selectivity", "tight-width", "loose-width"}, cells)
}

func modes(n int, seed int64) {
	fmt.Printf("E8 — query modes per aggregate (n=%d): imprecise width, TRAPP cost at R=width/4, precise cost\n", n)
	rows := experiment.Modes(n, seed)
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Agg.String(),
			fmt.Sprintf("%.2f", r.ImpreciseW),
			fmt.Sprintf("%.2f", r.TrappR),
			fmt.Sprintf("%.0f", r.TrappCost),
			fmt.Sprintf("%.0f", r.PreciseCost),
		})
	}
	experiment.WriteTable(os.Stdout,
		[]string{"aggregate", "imprecise-width", "trapp-R", "trapp-cost", "precise-cost"}, cells)
}

func iterative(n int, seed int64) {
	fmt.Printf("E10 — batch (§4) vs iterative (§8.2) execution, R = width/4 (n=%d)\n", n)
	rows := experiment.IterativeVsBatch(n, seed)
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Agg.String(),
			fmt.Sprintf("%.2f", r.R),
			fmt.Sprintf("%.0f", r.BatchCost),
			fmt.Sprintf("%.0f", r.IterCost),
			fmt.Sprintf("%d", r.IterRounds),
		})
	}
	experiment.WriteTable(os.Stdout,
		[]string{"aggregate", "R", "batch-cost", "iter-cost", "iter-rounds"}, cells)
	fmt.Println("iterative exploits actual refreshed values, so it never pays more.")
}

func indexSpeedup(seed int64, reps int) {
	fmt.Println("E11 — CHOOSE_REFRESH(MIN): O(n) scan vs B-tree endpoint indexes (§5.1, §8.3)")
	rows := experiment.IndexSpeedup([]int{100, 1000, 10000, 100000}, seed, reps)
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			fmt.Sprintf("%d", r.N),
			r.ScanTime.Round(time.Nanosecond).String(),
			r.IndexTime.Round(time.Nanosecond).String(),
		})
	}
	experiment.WriteTable(os.Stdout, []string{"n", "scan-time", "indexed-time"}, cells)
}

func medians(n int, seed int64) {
	fmt.Printf("E12 — bounded MEDIAN (§8.1 extension): iterative refresh cost vs R (n=%d)\n", n)
	rows := experiment.Medians([]float64{50, 20, 10, 5, 2, 1, 0}, n, seed)
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			fmt.Sprintf("%.0f", r.R),
			fmt.Sprintf("%.2f", r.InitialW),
			fmt.Sprintf("%d", r.Refreshed),
			fmt.Sprintf("%.0f", r.RefreshCost),
		})
	}
	experiment.WriteTable(os.Stdout, []string{"R", "initial-width", "refreshed", "cost"}, cells)
}

func concurrent(clients, updaters, n int, seed int64, duration, warmup time.Duration, pushRate, budget float64) {
	const sources = 8
	type run struct{ clients, updaters int }
	var runs []run
	if updaters > 0 {
		// Mixed read/write mode: the read-mostly run first so the cost of
		// concurrent source pushes is visible in the same table.
		fmt.Printf("E15 — mixed read/write throughput (links=%d, sources=%d, updaters=%d, push-rate=%.0f/s, window=%v)\n",
			n, sources, updaters, pushRate, duration)
		runs = []run{{clients, 0}, {clients, updaters}}
	} else if budget > 0 {
		fmt.Printf("E13b — cost-budgeted concurrent throughput (links=%d, sources=%d, budget=%g, window=%v)\n",
			n, sources, budget, duration)
		runs = []run{{clients, 0}}
	} else {
		fmt.Printf("E13 — closed-loop concurrent throughput (links=%d, sources=%d, window=%v)\n",
			n, sources, duration)
		runs = []run{{clients, 0}}
		if clients > 1 {
			runs = []run{{1, 0}, {clients, 0}} // baseline first so the speedup is visible
		}
	}
	var cells [][]string
	var qps []float64
	for _, r := range runs {
		res, err := experiment.ConcurrentWarm(r.clients, r.updaters, n, sources, seed, duration, warmup, pushRate, budget)
		if err != nil {
			fmt.Fprintf(os.Stderr, "concurrent benchmark: %v\n", err)
			os.Exit(1)
		}
		qps = append(qps, res.QPS)
		out.Concurrent = append(out.Concurrent, res)
		cells = append(cells, []string{
			fmt.Sprintf("%d", res.Clients),
			fmt.Sprintf("%d", res.Updaters),
			fmt.Sprintf("%d", res.Queries),
			fmt.Sprintf("%.0f", res.QPS),
			fmt.Sprintf("%.0f", res.PushRate),
			res.P50.Round(time.Microsecond).String(),
			res.P99.Round(time.Microsecond).String(),
			fmt.Sprintf("%d", res.Refreshes),
			fmt.Sprintf("%.0f", res.RefreshCost),
			fmt.Sprintf("%d", res.BudgetExhausted),
		})
	}
	experiment.WriteTable(os.Stdout,
		[]string{"clients", "updaters", "queries", "qps", "pushes/s", "p50", "p99", "refreshes", "refresh-cost", "budget-exh"}, cells)
	if len(qps) == 2 && updaters == 0 {
		fmt.Printf("speedup: %.2fx aggregate QPS at %d clients vs 1\n", qps[1]/qps[0], clients)
	}
}

func subscriptions(subscribers, links int, seed int64, rounds int) {
	const sources = 8
	fmt.Printf("E14 — push subscriptions vs naive per-subscription poll loop "+
		"(subscribers=%d, links=%d, sources=%d, rounds=%d, update-fraction=%g)\n",
		subscribers, links, sources, rounds, experiment.UpdateFraction)
	cmp, err := experiment.SubscriptionsCompare(subscribers, links, sources, rounds, seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "subscription benchmark: %v\n", err)
		os.Exit(1)
	}
	out.Subscriptions = &cmp
	row := func(r experiment.SubscriptionModeResult) []string {
		return []string{
			r.Mode,
			fmt.Sprintf("%d", r.Deliveries),
			fmt.Sprintf("%.0f", r.DeliveriesPerSec),
			fmt.Sprintf("%d", r.QueryRefreshes),
			fmt.Sprintf("%.0f", r.QueryRefreshCost),
			fmt.Sprintf("%.0f", r.ValueRefreshCost),
			fmt.Sprintf("%.0f", r.TotalRefreshCost),
			r.RepairP50.Round(time.Microsecond).String(),
			r.RepairP99.Round(time.Microsecond).String(),
			fmt.Sprintf("%d", r.Unmet),
		}
	}
	experiment.WriteTable(os.Stdout,
		[]string{"mode", "deliveries", "deliv/s", "q-refreshes", "q-cost", "v-cost", "total-cost", "repair-p50", "repair-p99", "unmet"},
		[][]string{row(cmp.Poll), row(cmp.Push)})
	fmt.Printf("shared refreshes (one payment serving >1 subscription): %d across %d views\n",
		cmp.Push.SharedRefreshes, cmp.Push.Views)
	fmt.Printf("refresh-cost ratio (poll/push) for the same delivered precision: %.2fx\n",
		cmp.RefreshCostRatio)
}

func batch(batchN, links int, seed int64) {
	const sources = 8
	fmt.Printf("E16 — one ExecuteBatch vs %d sequential ExecuteCtx with E13 drift between queries "+
		"(links=%d, sources=%d)\n", batchN, links, sources)
	cmp, err := experiment.BatchCompare(batchN, links, sources, seed, true)
	if err != nil {
		fmt.Fprintf(os.Stderr, "batch benchmark: %v\n", err)
		os.Exit(1)
	}
	out.Batch = &cmp
	row := func(r experiment.BatchModeResult) []string {
		return []string{
			r.Mode,
			fmt.Sprintf("%d", r.QueryRefreshes),
			fmt.Sprintf("%.0f", r.QueryRefreshCost),
			fmt.Sprintf("%.0f", r.ValueRefreshCost),
			r.Elapsed.Round(time.Microsecond).String(),
			fmt.Sprintf("%d", r.Unmet),
		}
	}
	experiment.WriteTable(os.Stdout,
		[]string{"mode", "q-refreshes", "q-cost", "v-cost", "exec-time", "unmet"},
		[][]string{row(cmp.Sequential), row(cmp.Batch)})
	fmt.Printf("refresh-cost ratio (sequential/batch): %.2fx; message ratio: %.2fx\n",
		cmp.CostRatio, cmp.MessageRatio)
	fmt.Printf("per-query answers verified bit-identical to standalone execution: %v\n", cmp.Verified)
}

func remote(addr string, clients, verifyN int, duration, warmup time.Duration, wire string, pipeline int) {
	if addr == "" {
		fmt.Fprintln(os.Stderr, "remote mode needs -remote <addr> (a live trappserver)")
		os.Exit(2)
	}
	fmt.Printf("E17 — closed-loop throughput over the %s wire against %s (clients=%d, pipeline=%d, verify=%d, window=%v)\n",
		wire, addr, clients, pipeline, verifyN, duration)
	res, err := experiment.Remote(addr, clients, verifyN, duration, warmup, wire, pipeline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "remote benchmark: %v\n", err)
		os.Exit(1)
	}
	out.Remote = &res
	if verifyN > 0 {
		fmt.Printf("verified %d wire answers bit-identical to in-process execution (over the %s wire)\n",
			res.Verified, res.Wire)
	}
	experiment.WriteTable(os.Stdout,
		[]string{"wire", "clients", "queries", "qps", "p50", "p99", "refresh-cost", "partial", "rejected", "allocs/op c|s", "plan-hit"},
		[][]string{{
			res.Wire,
			fmt.Sprintf("%d", res.Clients),
			fmt.Sprintf("%d", res.Queries),
			fmt.Sprintf("%.0f", res.QPS),
			res.P50.Round(time.Microsecond).String(),
			res.P99.Round(time.Microsecond).String(),
			fmt.Sprintf("%.0f", res.RefreshCost),
			fmt.Sprintf("%d", res.PartialOutcomes),
			fmt.Sprintf("%d", res.Rejected),
			fmt.Sprintf("%.0f|%.0f", res.ClientAllocsPerOp, res.ServerAllocsPerOp),
			fmt.Sprintf("%.2f", res.PlanCacheHitRate),
		}})
}

func scale(remoteAddr string, opts experiment.ScaleOptions) {
	var res experiment.ScaleResult
	var err error
	if remoteAddr != "" {
		fmt.Printf("E18r — adversarial scale workload over HTTP against %s (clients=%d, phase=%d ticks)\n",
			remoteAddr, opts.Clients, opts.TicksPerPhase)
		res, err = experiment.ScaleRemote(remoteAddr, opts)
	} else {
		fmt.Printf("E18 — adversarial scale workload (objects=%d, tenants=%d, clients=%d, updaters=%d, subs=%d, zipf q/u=%.1f/%.1f, phase=%d ticks)\n",
			opts.Objects, opts.Tenants, opts.Clients, opts.Updaters, opts.Subscribers,
			opts.QueryS, opts.UpdateS, opts.TicksPerPhase)
		res, err = experiment.Scale(opts)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "scale benchmark: %v\n", err)
		os.Exit(1)
	}
	out.Scale = &res
	var cells [][]string
	for _, p := range res.Phases {
		cells = append(cells, []string{
			p.Name,
			fmt.Sprintf("%.1f", p.QueryS),
			fmt.Sprintf("%d", p.Queries),
			fmt.Sprintf("%.0f", p.QPS),
			p.P50.Round(time.Microsecond).String(),
			p.P99.Round(time.Microsecond).String(),
			fmt.Sprintf("%d", p.Unmet),
			fmt.Sprintf("%.0f", p.PushRate),
			fmt.Sprintf("%.2f", p.HotShardPushShare),
			p.RepairP50.Round(time.Microsecond).String(),
			p.RepairP99.Round(time.Microsecond).String(),
		})
	}
	experiment.WriteTable(os.Stdout,
		[]string{"phase", "zipf-q", "queries", "qps", "p50", "p99", "unmet", "pushes/s", "hot-shard", "repair-p50", "repair-p99"}, cells)
	if remoteAddr == "" {
		fmt.Printf("build: %v for %d objects; max shard occupancy share %.3f (ideal %.3f); sched refresh cost %.0f; query refresh cost %.0f\n",
			res.Build.Round(time.Millisecond), res.Objects, res.MaxShardLenShare, 1.0/8,
			res.SchedRefreshCost, res.RefreshCost)
	}
}

func cluster(nodes, clients, links int, seed int64, duration, warmup time.Duration) {
	const sources = 8
	fmt.Printf("E19 — scatter-gather cluster throughput (links=%d, sources=%d, clients=%d, window=%v): 1 node vs %d\n",
		links, sources, clients, duration, nodes)
	runs := []int{nodes}
	if nodes > 1 {
		runs = []int{1, nodes} // baseline first so coordination overhead is visible
	}
	var cells [][]string
	for _, n := range runs {
		res, err := experiment.ClusterBench(n, clients, links, sources, seed, duration, warmup)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cluster benchmark: %v\n", err)
			os.Exit(1)
		}
		out.Cluster = append(out.Cluster, res)
		cells = append(cells, []string{
			fmt.Sprintf("%d", res.Nodes),
			fmt.Sprintf("%d", res.Clients),
			fmt.Sprintf("%d", res.Queries),
			fmt.Sprintf("%.0f", res.QPS),
			res.P50.Round(time.Microsecond).String(),
			res.P99.Round(time.Microsecond).String(),
			fmt.Sprintf("%.0f", res.RefreshCost),
			fmt.Sprintf("%d", res.Unmet),
			fmt.Sprintf("%d", res.DegradedQueries),
		})
	}
	experiment.WriteTable(os.Stdout,
		[]string{"nodes", "clients", "queries", "qps", "p50", "p99", "refresh-cost", "unmet", "degraded"}, cells)
	last := out.Cluster[len(out.Cluster)-1]
	for _, p := range last.Partitions {
		fmt.Printf("partition %s: buckets=%v ops=%d errors=%d retries=%d degraded=%d\n",
			p.ID, p.Buckets, p.Ops, p.Errors, p.Retries, p.Degraded)
	}
}

func joins(seed int64) {
	fmt.Println("E9 — join refresh planners (SUM over equi-join with bounded selection, R=5)")
	rows := experiment.Joins(8, 5, seed)
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Planner,
			fmt.Sprintf("%.0f", r.RefreshCost),
			fmt.Sprintf("%d", r.Refreshed),
			fmt.Sprintf("%.2f", r.FinalWidth),
		})
	}
	experiment.WriteTable(os.Stdout, []string{"planner", "refresh-cost", "refreshed", "final-width"}, cells)
}
