// Command trappload generates the experiment workloads as CSV for external
// analysis or plotting.
//
// Usage:
//
//	trappload -kind stocks  [-n 90]  [-seed ...]   # day-range quotes
//	trappload -kind network [-nodes 50] [-links 200] [-steps 100] [-seed ...]
//
// The stocks output has one row per synthetic stock (symbol, low, high,
// close, cost) — the input of the Figure 5/6 experiments. The network
// output has one row per link per step (step, key, from, to, latency,
// bandwidth, traffic, cost).
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"

	"trapp/internal/experiment"
	"trapp/internal/workload"
)

func main() {
	kind := flag.String("kind", "stocks", "workload kind: stocks or network")
	n := flag.Int("n", 90, "number of stocks")
	nodes := flag.Int("nodes", 50, "network nodes")
	links := flag.Int("links", 200, "network links")
	steps := flag.Int("steps", 100, "network update rounds")
	seed := flag.Int64("seed", experiment.DefaultSeed, "generator seed")
	flag.Parse()

	w := csv.NewWriter(os.Stdout)
	defer w.Flush()

	switch *kind {
	case "stocks":
		writeStocks(w, *n, *seed)
	case "network":
		if err := writeNetwork(w, *nodes, *links, *steps, *seed); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown kind %q\n", *kind)
		os.Exit(2)
	}
}

func writeStocks(w *csv.Writer, n int, seed int64) {
	_ = w.Write([]string{"symbol", "low", "high", "close", "cost"})
	for _, q := range workload.StockDay(n, seed) {
		_ = w.Write([]string{
			strconv.Itoa(q.Symbol),
			fmt.Sprintf("%.4f", q.Low),
			fmt.Sprintf("%.4f", q.High),
			fmt.Sprintf("%.4f", q.Close),
			fmt.Sprintf("%.0f", q.Cost),
		})
	}
}

func writeNetwork(w *csv.Writer, nodes, links, steps int, seed int64) error {
	net, err := workload.NewNetwork(nodes, links, seed)
	if err != nil {
		return err
	}
	_ = w.Write([]string{"step", "key", "from", "to", "latency", "bandwidth", "traffic", "cost"})
	for s := 0; s < steps; s++ {
		for _, l := range net.Links {
			v := l.Values()
			_ = w.Write([]string{
				strconv.Itoa(s),
				strconv.FormatInt(l.Key, 10),
				strconv.Itoa(l.From),
				strconv.Itoa(l.To),
				fmt.Sprintf("%.4f", v[0]),
				fmt.Sprintf("%.4f", v[1]),
				fmt.Sprintf("%.4f", v[2]),
				fmt.Sprintf("%.0f", l.Cost),
			})
		}
		net.Step()
	}
	return nil
}
