// Command trappload generates the experiment workloads as CSV for
// external analysis or plotting, and doubles as a load driver against a
// running trappserver.
//
// Usage:
//
//	trappload -kind stocks  [-n 90]  [-seed ...]   # day-range quotes
//	trappload -kind network [-nodes 50] [-links 200] [-steps 100] [-seed ...]
//	trappload -remote http://host:7090 [-queries 200] [-concurrency 4] [-seed ...]
//
// The stocks output has one row per synthetic stock (symbol, low, high,
// close, cost) — the input of the Figure 5/6 experiments. The network
// output has one row per link per step (step, key, from, to, latency,
// bandwidth, traffic, cost).
//
// -remote drives POST /query against a server's links table with a
// randomized bounded-aggregation mix — small WITHIN values, so most
// queries pay query-initiated refreshes. That is what the crash-recovery
// e2e needs: real write traffic through the server's WAL while it is
// killed mid-stream. Exits non-zero if any request fails at the
// transport level or returns a non-partial error.
package main

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"trapp/internal/experiment"
	"trapp/internal/workload"
)

func main() {
	kind := flag.String("kind", "stocks", "workload kind: stocks or network")
	n := flag.Int("n", 90, "number of stocks")
	nodes := flag.Int("nodes", 50, "network nodes")
	links := flag.Int("links", 200, "network links")
	steps := flag.Int("steps", 100, "network update rounds")
	seed := flag.Int64("seed", experiment.DefaultSeed, "generator seed")
	remote := flag.String("remote", "", "drive POST /query against this server base URL instead of writing CSV")
	queries := flag.Int("queries", 200, "-remote: number of queries to send")
	concurrency := flag.Int("concurrency", 4, "-remote: concurrent client connections")
	flag.Parse()

	if *remote != "" {
		if err := driveRemote(*remote, *queries, *concurrency, *seed); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	w := csv.NewWriter(os.Stdout)
	defer w.Flush()

	switch *kind {
	case "stocks":
		writeStocks(w, *n, *seed)
	case "network":
		if err := writeNetwork(w, *nodes, *links, *steps, *seed); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown kind %q\n", *kind)
		os.Exit(2)
	}
}

// driveRemote sends a randomized bounded-aggregation mix over the links
// table. Tight WITHIN constraints make most queries refresh — the point
// is to generate server-side write traffic, not to benchmark.
func driveRemote(base string, queries, concurrency int, seed int64) error {
	if concurrency < 1 {
		concurrency = 1
	}
	aggs := []string{"MIN", "MAX", "AVG", "SUM"}
	cols := []string{"latency", "bandwidth", "traffic"}
	withins := []string{"1", "2", "5", "25"}
	client := &http.Client{Timeout: 30 * time.Second}

	var (
		wg     sync.WaitGroup
		next   atomic.Int64
		failed atomic.Int64
		firstE atomic.Pointer[string]
	)
	record := func(err error) {
		failed.Add(1)
		msg := err.Error()
		firstE.CompareAndSwap(nil, &msg)
	}
	for c := 0; c < concurrency; c++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(worker)))
			for next.Add(1) <= int64(queries) {
				sql := fmt.Sprintf("SELECT %s(%s) WITHIN %s FROM links",
					aggs[rng.Intn(len(aggs))], cols[rng.Intn(len(cols))], withins[rng.Intn(len(withins))])
				body, _ := json.Marshal(map[string]string{"sql": sql})
				resp, err := client.Post(base+"/query", "application/json", bytes.NewReader(body))
				if err != nil {
					record(err)
					continue
				}
				out, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				// 200 is success; 206-style partials (precision unmet under
				// load) still answered soundly. Anything else is a failure.
				if resp.StatusCode >= 400 {
					record(fmt.Errorf("%s: status %d: %s", sql, resp.StatusCode, out))
				}
			}
		}(c)
	}
	wg.Wait()
	fmt.Printf("trappload: %d queries against %s, %d failed\n", queries, base, failed.Load())
	if n := failed.Load(); n > 0 {
		return fmt.Errorf("trappload: %d/%d remote queries failed (first: %s)", n, queries, *firstE.Load())
	}
	return nil
}

func writeStocks(w *csv.Writer, n int, seed int64) {
	_ = w.Write([]string{"symbol", "low", "high", "close", "cost"})
	for _, q := range workload.StockDay(n, seed) {
		_ = w.Write([]string{
			strconv.Itoa(q.Symbol),
			fmt.Sprintf("%.4f", q.Low),
			fmt.Sprintf("%.4f", q.High),
			fmt.Sprintf("%.4f", q.Close),
			fmt.Sprintf("%.0f", q.Cost),
		})
	}
}

func writeNetwork(w *csv.Writer, nodes, links, steps int, seed int64) error {
	net, err := workload.NewNetwork(nodes, links, seed)
	if err != nil {
		return err
	}
	_ = w.Write([]string{"step", "key", "from", "to", "latency", "bandwidth", "traffic", "cost"})
	for s := 0; s < steps; s++ {
		for _, l := range net.Links {
			v := l.Values()
			_ = w.Write([]string{
				strconv.Itoa(s),
				strconv.FormatInt(l.Key, 10),
				strconv.Itoa(l.From),
				strconv.Itoa(l.To),
				fmt.Sprintf("%.4f", v[0]),
				fmt.Sprintf("%.4f", v[1]),
				fmt.Sprintf("%.4f", v[2]),
				fmt.Sprintf("%.0f", l.Cost),
			})
		}
		net.Step()
	}
	return nil
}
