// Command trappdemo is an interactive TRAPP console over a simulated
// monitored network. It builds a random topology of links whose
// latency/bandwidth/traffic evolve as random walks, replicates them into a
// monitoring cache with adaptive bounds, and reads TRAPP/AG queries from
// stdin:
//
//	> SELECT AVG(latency) WITHIN 2 FROM links WHERE traffic > 100
//	answer [7.8, 9.2]  refreshed 12/200 tuples (cost 41)  in 1.2ms
//
// EXPLAIN ANALYZE before a SELECT prints the request's span tree (sync,
// scan, choose, per-source refresh, fold) with per-span wall time and
// refresh cost. Meta commands: .tick N advances the clock and applies N
// update rounds; .stats prints network counters; .quit exits.
//
// Usage:
//
//	trappdemo [-nodes 50] [-links 200] [-seed 1]
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"trapp"
	"trapp/internal/workload"
)

func main() {
	nodes := flag.Int("nodes", 50, "nodes in the simulated network")
	links := flag.Int("links", 200, "monitored links")
	seed := flag.Int64("seed", 1, "workload seed")
	flag.Parse()

	net, err := workload.NewNetwork(*nodes, *links, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	sys := trapp.NewSystem(trapp.Options{})
	src, err := sys.AddSource("nodes", nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	c, err := sys.AddCache("monitor", workload.LinkSchema())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, l := range net.Links {
		if err := src.AddObject(l.Key, l.Values(), l.Cost, trapp.NewAdaptiveWidth(1)); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := c.Subscribe(src, l.Key, []float64{float64(l.From), float64(l.To)}); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if err := sys.Mount("links", c); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("TRAPP demo: %d nodes, %d monitored links. Type queries or .help\n", *nodes, *links)
	tick(sys, src, net, 10) // some initial history

	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
		case line == ".quit" || line == ".exit":
			return
		case line == ".help":
			fmt.Println("queries:  SELECT <MIN|MAX|SUM|COUNT|AVG>(col) [WITHIN r] FROM links [WHERE pred]")
			fmt.Println("columns:  latency, bandwidth, traffic (bounded); from, to (exact)")
			fmt.Println("explain:  EXPLAIN ANALYZE SELECT ... prints the request's span tree")
			fmt.Println("meta:     .tick N | .stats | .quit")
		case line == ".stats":
			st := sys.Stats()
			fmt.Printf("messages: %v  query-cost: %.0f  value-cost: %.0f\n",
				st.Messages, st.QueryRefreshCost, st.ValueRefreshCost)
		case strings.HasPrefix(line, ".tick"):
			n := 1
			if f := strings.Fields(line); len(f) > 1 {
				if v, err := strconv.Atoi(f[1]); err == nil && v > 0 {
					n = v
				}
			}
			tick(sys, src, net, n)
			fmt.Printf("advanced %d rounds (t=%d)\n", n, sys.Clock.Now())
		default:
			runQuery(sys, line)
		}
		fmt.Print("> ")
	}
}

// tick advances the clock and applies update rounds to every link,
// letting the sources push value-initiated refreshes as bounds escape.
func tick(sys *trapp.System, src *trapp.Source, net *workload.Network, rounds int) {
	for i := 0; i < rounds; i++ {
		sys.Clock.Advance(1)
		for _, l := range net.Links {
			if err := src.SetValue(l.Key, l.Step()); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
		}
	}
}

// runQuery parses and executes one statement line. A multi-aggregate
// select list executes as one batch: a shared scan and a single deduped
// refresh round across its queries.
func runQuery(sys *trapp.System, line string) {
	st, err := trapp.ParseStatement(line, sys)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	qs := st.Queries
	var opts []trapp.ExecOption
	if st.Explain {
		opts = append(opts, trapp.WithTrace())
	}
	start := time.Now()
	var results []trapp.Result
	if len(qs) == 1 {
		res, err := sys.ExecuteCtx(context.Background(), qs[0], opts...)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		results = []trapp.Result{res}
	} else {
		results, err = sys.ExecuteBatch(context.Background(), qs, opts...)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
	}
	elapsed := time.Since(start)
	n := sys.MountedCache(qs[0].Table).Len()
	for i, res := range results {
		label := "answer"
		if len(results) > 1 {
			label = fmt.Sprintf("%s(%s)", qs[i].Agg, qs[i].Column)
		}
		fmt.Printf("%s %v  refreshed %d/%d tuples (cost %.0f)  in %s\n",
			label, res.Answer, res.Refreshed, n, res.RefreshCost, elapsed.Round(time.Microsecond))
		if !res.Met {
			fmt.Println("warning: precision constraint not met")
		}
		if st.Explain && res.Trace != nil {
			printSpan(res.Trace.Snapshot().Root, 1)
		}
	}
}

// printSpan renders one span of an EXPLAIN ANALYZE trace indented by
// depth: name, wall time, refresh cost charged, detail, then children.
func printSpan(sp trapp.SpanSnapshot, depth int) {
	fmt.Printf("%s%s  %s", strings.Repeat("  ", depth), sp.Name,
		time.Duration(sp.DurationNS).Round(time.Microsecond))
	if sp.Cost > 0 {
		fmt.Printf("  cost=%.0f", sp.Cost)
	}
	if sp.Detail != "" {
		fmt.Printf("  %s", sp.Detail)
	}
	fmt.Println()
	for _, c := range sp.Children {
		printSpan(c, depth+1)
	}
}
