// Command trappcoord fronts a partitioned TRAPP cluster: it dials the
// framed listeners of N trappserver processes started with
// -partition i/N, verifies their identities and table catalogs agree,
// and serves the same HTTP + framed query surface a single trappserver
// does — every query scatters to the partitions owning its buckets and
// the per-partition interval answers gather back through the
// associative fold, bit-identical to a single embedded system over the
// same tuples.
//
//	POST /query      scatter-gather execute (single or batch SQL)
//	GET  /subscribe  standing query re-multiplexed over per-partition
//	                 subscription streams
//	GET  /metrics    service metrics + per-partition health (ops,
//	                 errors, retries, latency) under "cluster"
//	GET  /metrics.prom  Prometheus text format
//	GET  /healthz    liveness + the full partition topology (ring
//	                 bucket ownership per node)
//
// Partition failures degrade instead of erroring where the paper's
// semantics allow: a slow or down partition's last known fold state is
// re-widened conservatively, so answers stay correct intervals — just
// wider — and precision-unmet surfaces only when the bound truly can't
// be met. -optimeout and -retries bound each per-partition attempt;
// -slack tunes the re-widen growth per miss.
//
// Nodes are given as -nodes "p0=host:port,p1=host:port,..."; ids must
// match the -partition indices the servers were placed with (p0 is
// partition 0/N). -waitready retries the initial hello round so the
// coordinator can start before its partitions finish booting.
//
// The coordinator itself is stateless — durability lives in the
// partition servers: start each with its own -data directory and a
// restarted partition recovers its shard of the tuples bit-identically
// (bounds conservatively re-widened until re-handshaked), with the
// recovery reported on that partition's /healthz. The coordinator's
// hello round then re-verifies the recovered catalog, and its degraded
// re-widening covers the window while a partition is down.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	gonet "net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"trapp/internal/partition"
	"trapp/internal/refresh"
	"trapp/internal/server"
)

func parseNodes(spec string) ([]partition.Node, error) {
	if spec == "" {
		return nil, fmt.Errorf("no -nodes given")
	}
	var nodes []partition.Node
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, addr, ok := strings.Cut(part, "=")
		if !ok || id == "" || addr == "" {
			return nil, fmt.Errorf("bad node %q (want id=host:port)", part)
		}
		nodes = append(nodes, partition.NewRemoteNode(id, addr))
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("no -nodes given")
	}
	return nodes, nil
}

func main() {
	addr := flag.String("addr", ":7080", "HTTP listen address")
	framedAddr := flag.String("framed", ":7081", "framed binary-protocol listen address (empty: disabled)")
	nodesSpec := flag.String("nodes", "", `partition nodes: "p0=host:port,p1=host:port,..." (addresses are the partitions' framed listeners)`)
	opTimeout := flag.Duration("optimeout", 2*time.Second, "per-partition operation attempt timeout (0: request deadline only)")
	retries := flag.Int("retries", 1, "extra attempts per failed partition operation")
	slack := flag.Float64("slack", 0, "degraded-node re-widen slack per miss (0: engine default)")
	waitReady := flag.Duration("waitready", 30*time.Second, "keep retrying the initial partition hello round this long")
	maxInFlight := flag.Int("maxinflight", 0, "max concurrent /query requests (0: unlimited)")
	maxSubs := flag.Int("maxsubs", 0, "max concurrent /subscribe streams (0: unlimited)")
	clientBudget := flag.Float64("clientbudget", 0, "per-client cumulative refresh-cost ceiling (0: unlimited)")
	slowQuery := flag.Duration("slowquery", 0, "log /query requests slower than this (0: disabled)")
	pprofOn := flag.Bool("pprof", false, "mount /debug/pprof profiling endpoints")
	flag.Parse()

	nodes, err := parseNodes(*nodesSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "trappcoord: %v\n", err)
		os.Exit(1)
	}
	ccfg := partition.Config{
		// Must match the solver the partition servers run, or plans
		// chosen here diverge from the plans a single node would pick.
		Options:       refresh.Options{Solver: refresh.SolverGreedyDensity},
		OpTimeout:     *opTimeout,
		Retries:       *retries,
		DegradedSlack: *slack,
	}

	// The hello round needs every partition up; retry it so start order
	// doesn't matter (CI boots servers and coordinator concurrently).
	var cl *partition.Cluster
	deadline := time.Now().Add(*waitReady)
	for {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		cl, err = partition.New(ctx, nodes, ccfg)
		cancel()
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			fmt.Fprintf(os.Stderr, "trappcoord: cluster not ready after %v: %v\n", *waitReady, err)
			os.Exit(1)
		}
		time.Sleep(250 * time.Millisecond)
	}
	defer cl.Close()

	info := map[string]any{
		"role":       "coordinator",
		"partitions": len(nodes),
	}
	srv := server.NewEngine(cl, server.Config{
		MaxInFlight:    *maxInFlight,
		MaxSubscribers: *maxSubs,
		ClientBudget:   *clientBudget,
		Info:           info,
		SlowQuery:      *slowQuery,
		Logger:         slog.New(slog.NewTextHandler(os.Stderr, nil)),
		EnablePprof:    *pprofOn,
		Topology:       cl.Topology,
	})

	if *framedAddr != "" {
		fln, err := srv.ListenAndServeFramed(*framedAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "trappcoord: listen framed %s: %v\n", *framedAddr, err)
			os.Exit(1)
		}
		if tcp, ok := fln.Addr().(*gonet.TCPAddr); ok {
			info["framed_port"] = tcp.Port
		}
		fmt.Printf("trappcoord: framed protocol on %s\n", fln.Addr())
	}

	hs, ln, err := srv.ListenAndServe(*addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "trappcoord: listen %s: %v\n", *addr, err)
		os.Exit(1)
	}
	fmt.Printf("trappcoord: coordinating %d partitions on http://%s\n", len(nodes), ln.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("trappcoord: draining")

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "trappcoord: drain: %v\n", err)
	}
	_ = hs.Shutdown(ctx)
	cl.Close()
	fmt.Println("trappcoord: bye")
}
