// Command benchdiff compares a freshly generated trappbench JSON report
// against a committed baseline and fails (exit 1) when a gated metric
// regresses past the threshold — the CI tripwire that keeps the numbers
// in BENCH_*.json honest as the engine evolves.
//
//	benchdiff [-threshold 0.15] [-gate qps,p99_ns] [-strict] \
//	          [-require remote.verified>=200] baseline.json fresh.json
//
// Output is a per-metric delta table (metric, baseline, current,
// %change, verdict), one row per gated comparison.
//
// -require adds absolute assertions on the fresh report, independent of
// the baseline: a comma-separated list of path>=value or path<=value
// clauses over dotted leaf paths (e.g. remote.verified>=200 demands the
// wire-verification count, remote.qps>=40000 a throughput floor). A
// missing path fails the assertion — silence never passes a gate.
//
// Both files are walked recursively; every numeric leaf whose key is in
// the gate set is considered, over the union of both files' paths.
// Direction is inferred from the metric name: qps and pushes_per_sec
// regress by dropping, latency metrics (…_ns) regress by rising. A
// gated metric present on only one side gets an explicit "missing in
// baseline" / "missing in candidate" row — a warning by default (phases
// can legitimately change shape), a failure under -strict — so metric
// sets drifting apart never silently shrink the comparison.
// Non-gated leaves are ignored, so timestamps, seeds, and commentary
// never trip the gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"text/tabwriter"
)

// higherBetter lists the gate metrics that regress by dropping; every
// other gated metric (the _ns latency family) regresses by rising.
var higherBetter = map[string]bool{
	"qps":            true,
	"pushes_per_sec": true,
}

// flatten walks a decoded JSON value and collects every numeric leaf
// keyed by its dotted path (arrays contribute [i] segments).
func flatten(prefix string, v any, out map[string]float64) {
	switch x := v.(type) {
	case map[string]any:
		for k, sub := range x {
			p := k
			if prefix != "" {
				p = prefix + "." + k
			}
			flatten(p, sub, out)
		}
	case []any:
		for i, sub := range x {
			flatten(fmt.Sprintf("%s[%d]", prefix, i), sub, out)
		}
	case float64:
		out[prefix] = x
	}
}

// leafKey returns the final key segment of a dotted path, without any
// array index suffix.
func leafKey(path string) string {
	if i := strings.LastIndex(path, "."); i >= 0 {
		path = path[i+1:]
	}
	if i := strings.Index(path, "["); i >= 0 {
		path = path[:i]
	}
	return path
}

// finding is one gated comparison.
type finding struct {
	path       string
	base, cur  float64
	regression float64 // fraction; positive = worse
	missingIn  string  // "" (both present), "baseline", or "candidate"
}

// compare gates the union of both reports' metric paths: a gated metric
// present on only one side yields an explicit missing-in row rather
// than silently vanishing from the table (a baseline generated before a
// metric existed, or a candidate that dropped one, must be visible).
func compare(base, fresh map[string]float64, gates map[string]bool) []finding {
	union := make(map[string]bool, len(base)+len(fresh))
	for p := range base {
		union[p] = true
	}
	for p := range fresh {
		union[p] = true
	}
	paths := make([]string, 0, len(union))
	for p := range union {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	var out []finding
	for _, p := range paths {
		key := leafKey(p)
		if !gates[key] {
			continue
		}
		b, inBase := base[p]
		c, inFresh := fresh[p]
		switch {
		case !inFresh:
			out = append(out, finding{path: p, base: b, missingIn: "candidate"})
			continue
		case !inBase:
			out = append(out, finding{path: p, cur: c, missingIn: "baseline"})
			continue
		}
		if b == 0 {
			continue // no meaningful ratio; zero baselines are not gated
		}
		var reg float64
		if higherBetter[key] {
			reg = (b - c) / b
		} else {
			reg = (c - b) / b
		}
		out = append(out, finding{path: p, base: b, cur: c, regression: reg})
	}
	return out
}

// requirement is one absolute assertion on the fresh report.
type requirement struct {
	path  string
	op    string // ">=" or "<="
	bound float64
}

// parseRequires parses the -require clause list.
func parseRequires(spec string) ([]requirement, error) {
	var out []requirement
	for _, clause := range strings.Split(spec, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		op := ">="
		i := strings.Index(clause, op)
		if i < 0 {
			op = "<="
			i = strings.Index(clause, op)
		}
		if i <= 0 {
			return nil, fmt.Errorf("require clause %q: want path>=value or path<=value", clause)
		}
		var bound float64
		if _, err := fmt.Sscanf(clause[i+2:], "%g", &bound); err != nil {
			return nil, fmt.Errorf("require clause %q: bad bound: %w", clause, err)
		}
		out = append(out, requirement{path: strings.TrimSpace(clause[:i]), op: op, bound: bound})
	}
	return out, nil
}

// checkRequires evaluates the absolute assertions against the fresh
// report, printing one verdict line each; it returns the failure count.
func checkRequires(fresh map[string]float64, reqs []requirement, w io.Writer) int {
	failed := 0
	for _, r := range reqs {
		v, ok := fresh[r.path]
		switch {
		case !ok:
			fmt.Fprintf(w, "require %s %s %g: FAIL (path missing)\n", r.path, r.op, r.bound)
			failed++
		case (r.op == ">=" && v < r.bound) || (r.op == "<=" && v > r.bound):
			fmt.Fprintf(w, "require %s %s %g: FAIL (got %.6g)\n", r.path, r.op, r.bound, v)
			failed++
		default:
			fmt.Fprintf(w, "require %s %s %g: ok (got %.6g)\n", r.path, r.op, r.bound, v)
		}
	}
	return failed
}

func loadFlat(path string) (map[string]float64, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var v any
	if err := json.Unmarshal(buf, &v); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]float64)
	flatten("", v, out)
	return out, nil
}

func main() {
	threshold := flag.Float64("threshold", 0.15, "max tolerated fractional regression")
	gate := flag.String("gate", "qps,p99_ns", "comma-separated metric names to gate")
	strict := flag.Bool("strict", false, "fail when a gated baseline metric is missing from the fresh report")
	require := flag.String("require", "", "comma-separated absolute assertions on the fresh report (path>=value or path<=value)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [flags] baseline.json fresh.json")
		os.Exit(2)
	}

	gates := make(map[string]bool)
	for _, g := range strings.Split(*gate, ",") {
		if g = strings.TrimSpace(g); g != "" {
			gates[g] = true
		}
	}
	reqs, err := parseRequires(*require)
	if err == nil {
		var base, fresh map[string]float64
		base, err = loadFlat(flag.Arg(0))
		if err == nil {
			fresh, err = loadFlat(flag.Arg(1))
			if err == nil {
				code := run(base, fresh, gates, *threshold, *strict, os.Stdout)
				if checkRequires(fresh, reqs, os.Stdout) > 0 {
					code = 1
				}
				os.Exit(code)
			}
		}
	}
	fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
	os.Exit(2)
}

// run prints the comparison as a per-metric delta table and returns the
// process exit code. CHANGE is the raw value change (current vs
// baseline); VERDICT applies the metric's regression direction, so a
// +30% latency rise and a −30% QPS drop both read FAIL.
func run(base, fresh map[string]float64, gates map[string]bool, threshold float64, strict bool, w io.Writer) int {
	findings := compare(base, fresh, gates)
	if len(findings) == 0 {
		fmt.Fprintln(w, "benchdiff: no gated metrics in baseline")
		return 0
	}
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "METRIC\tBASELINE\tCURRENT\tCHANGE\tVERDICT")
	failed := 0
	for _, f := range findings {
		switch {
		case f.missingIn == "candidate":
			verdict := "warn (missing in candidate)"
			if strict {
				verdict = "FAIL (missing in candidate)"
				failed++
			}
			fmt.Fprintf(tw, "%s\t%.6g\t-\t-\t%s\n", f.path, f.base, verdict)
		case f.missingIn == "baseline":
			verdict := "warn (missing in baseline)"
			if strict {
				verdict = "FAIL (missing in baseline)"
				failed++
			}
			fmt.Fprintf(tw, "%s\t-\t%.6g\t-\t%s\n", f.path, f.cur, verdict)
		case f.regression > threshold:
			failed++
			fmt.Fprintf(tw, "%s\t%.6g\t%.6g\t%+.1f%%\tFAIL (regressed >%.0f%%)\n",
				f.path, f.base, f.cur, 100*(f.cur-f.base)/f.base, 100*threshold)
		default:
			fmt.Fprintf(tw, "%s\t%.6g\t%.6g\t%+.1f%%\tok\n",
				f.path, f.base, f.cur, 100*(f.cur-f.base)/f.base)
		}
	}
	tw.Flush()
	if failed > 0 {
		fmt.Fprintf(w, "benchdiff: %d metric(s) regressed beyond %.0f%%\n", failed, 100*threshold)
		return 1
	}
	fmt.Fprintf(w, "benchdiff: %d gated metric(s) within %.0f%%\n", len(findings), 100*threshold)
	return 0
}
