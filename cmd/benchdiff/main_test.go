package main

import (
	"encoding/json"
	"strings"
	"testing"
)

func flat(t *testing.T, src string) map[string]float64 {
	t.Helper()
	var v any
	if err := json.Unmarshal([]byte(src), &v); err != nil {
		t.Fatal(err)
	}
	out := make(map[string]float64)
	flatten("", v, out)
	return out
}

var defaultGates = map[string]bool{"qps": true, "p99_ns": true}

func TestFlattenPaths(t *testing.T) {
	f := flat(t, `{"scale":{"phases":[{"qps":100,"p99_ns":5000},{"qps":50}],"build_ns":7},"name":"x"}`)
	want := map[string]float64{
		"scale.phases[0].qps":    100,
		"scale.phases[0].p99_ns": 5000,
		"scale.phases[1].qps":    50,
		"scale.build_ns":         7,
	}
	if len(f) != len(want) {
		t.Fatalf("flattened %v, want %v", f, want)
	}
	for p, v := range want {
		if f[p] != v {
			t.Errorf("%s = %g, want %g", p, f[p], v)
		}
	}
}

func TestQPSRegressionDetected(t *testing.T) {
	base := flat(t, `{"phases":[{"qps":100}]}`)
	fresh := flat(t, `{"phases":[{"qps":80}]}`) // −20% QPS
	fs := compare(base, fresh, defaultGates)
	if len(fs) != 1 || fs[0].regression < 0.19 || fs[0].regression > 0.21 {
		t.Fatalf("findings %+v", fs)
	}
	if fs[0].regression <= 0.15 {
		t.Error("a 20% QPS drop must exceed the 15% threshold")
	}
}

func TestP99RegressionDetected(t *testing.T) {
	base := flat(t, `{"p99_ns":1000,"p50_ns":10}`)
	fresh := flat(t, `{"p99_ns":1300,"p50_ns":500}`) // p99 +30%; p50 not gated
	fs := compare(base, fresh, defaultGates)
	if len(fs) != 1 {
		t.Fatalf("findings %+v, want only the gated p99", fs)
	}
	if fs[0].regression < 0.29 || fs[0].regression > 0.31 {
		t.Errorf("p99 regression = %g, want ~0.30", fs[0].regression)
	}
}

func TestImprovementsAndNoisePass(t *testing.T) {
	base := flat(t, `{"qps":100,"p99_ns":1000}`)
	fresh := flat(t, `{"qps":95,"p99_ns":1100}`) // −5% qps, +10% p99: within 15%
	for _, f := range compare(base, fresh, defaultGates) {
		if f.regression > 0.15 {
			t.Errorf("%s regression %g should pass at 15%%", f.path, f.regression)
		}
	}
	fresh = flat(t, `{"qps":500,"p99_ns":10}`) // strict improvement
	for _, f := range compare(base, fresh, defaultGates) {
		if f.regression > 0 {
			t.Errorf("%s: improvement reported as regression %g", f.path, f.regression)
		}
	}
}

func TestMissingMetricFlagged(t *testing.T) {
	base := flat(t, `{"phases":[{"qps":100},{"qps":90}]}`)
	fresh := flat(t, `{"phases":[{"qps":100}]}`)
	fs := compare(base, fresh, defaultGates)
	missing := 0
	for _, f := range fs {
		if f.missingIn == "candidate" {
			missing++
		}
	}
	if missing != 1 {
		t.Fatalf("findings %+v, want one missing in candidate", fs)
	}
}

func TestCompareUnionEmitsBothMissingDirections(t *testing.T) {
	base := flat(t, `{"legacy":{"qps":500},"concurrent":[{"qps":1000,"p99_ns":9000}]}`)
	fresh := flat(t, `{"cluster":[{"qps":700}],"concurrent":[{"qps":950,"p99_ns":9100}]}`)
	fs := compare(base, fresh, defaultGates)
	got := make(map[string]finding)
	for _, f := range fs {
		got[f.path] = f
	}
	if len(fs) != 4 {
		t.Fatalf("want 4 findings over the union, got %d: %+v", len(fs), fs)
	}
	if f := got["legacy.qps"]; f.missingIn != "candidate" || f.base != 500 {
		t.Fatalf("dropped metric not reported missing in candidate: %+v", f)
	}
	if f := got["cluster[0].qps"]; f.missingIn != "baseline" || f.cur != 700 {
		t.Fatalf("new metric not reported missing in baseline: %+v", f)
	}
	if f := got["concurrent[0].qps"]; f.missingIn != "" || f.regression <= 0 {
		t.Fatalf("qps drop should be a plain positive regression: %+v", f)
	}
}

func TestRunMissingRowsWarnThenFailStrict(t *testing.T) {
	base := flat(t, `{"old":{"qps":100}}`)
	fresh := flat(t, `{"new":{"qps":100}}`)

	var relaxed strings.Builder
	if code := run(base, fresh, defaultGates, 0.15, false, &relaxed); code != 0 {
		t.Fatalf("missing rows should warn, not fail, without -strict:\n%s", relaxed.String())
	}
	out := relaxed.String()
	if !strings.Contains(out, "missing in candidate") || !strings.Contains(out, "missing in baseline") {
		t.Fatalf("missing rows absent from output:\n%s", out)
	}

	var strict strings.Builder
	if code := run(base, fresh, defaultGates, 0.15, true, &strict); code != 1 {
		t.Fatalf("-strict should fail on missing rows:\n%s", strict.String())
	}
}

func TestZeroBaselineSkipped(t *testing.T) {
	base := flat(t, `{"qps":0}`)
	fresh := flat(t, `{"qps":0}`)
	if fs := compare(base, fresh, defaultGates); len(fs) != 0 {
		t.Fatalf("zero baseline should not be gated: %+v", fs)
	}
}

func TestRunPrintsDeltaTable(t *testing.T) {
	base := flat(t, `{"qps":100,"p99_ns":1000,"gone":{"qps":5}}`)
	fresh := flat(t, `{"qps":50,"p99_ns":1010}`) // qps −50%: FAIL; p99 +1%: ok
	var b strings.Builder
	code := run(base, fresh, defaultGates, 0.15, false, &b)
	out := b.String()
	if code != 1 {
		t.Fatalf("exit code %d, want 1\n%s", code, out)
	}
	var header, failRow, okRow, missingRow bool
	for _, line := range strings.Split(out, "\n") {
		cols := strings.Fields(line)
		switch {
		case strings.HasPrefix(line, "METRIC"):
			header = len(cols) == 5 && cols[1] == "BASELINE" && cols[2] == "CURRENT" && cols[3] == "CHANGE" && cols[4] == "VERDICT"
		case strings.HasPrefix(line, "qps"):
			failRow = len(cols) >= 5 && cols[1] == "100" && cols[2] == "50" && cols[3] == "-50.0%" && strings.Contains(line, "FAIL")
		case strings.HasPrefix(line, "p99_ns"):
			okRow = len(cols) >= 5 && cols[1] == "1000" && cols[2] == "1010" && cols[3] == "+1.0%" && cols[4] == "ok"
		case strings.HasPrefix(line, "gone.qps"):
			missingRow = strings.Contains(line, "warn (missing in candidate)")
		}
	}
	if !header || !failRow || !okRow || !missingRow {
		t.Errorf("table missing rows (header=%v fail=%v ok=%v missing=%v):\n%s",
			header, failRow, okRow, missingRow, out)
	}
	if !strings.Contains(out, "1 metric(s) regressed") {
		t.Errorf("missing summary line:\n%s", out)
	}
}

func TestHigherVsLowerBetterDirections(t *testing.T) {
	base := flat(t, `{"qps":100,"p99_ns":100}`)
	fresh := flat(t, `{"qps":200,"p99_ns":200}`)
	for _, f := range compare(base, fresh, defaultGates) {
		switch leafKey(f.path) {
		case "qps":
			if f.regression >= 0 {
				t.Errorf("qps doubling must be an improvement, got %g", f.regression)
			}
		case "p99_ns":
			if f.regression < 0.99 {
				t.Errorf("p99 doubling must be a ~100%% regression, got %g", f.regression)
			}
		}
	}
}

func TestParseRequires(t *testing.T) {
	reqs, err := parseRequires(" remote.verified>=200 , remote.p99_ns<=5e6 ")
	if err != nil {
		t.Fatal(err)
	}
	want := []requirement{
		{path: "remote.verified", op: ">=", bound: 200},
		{path: "remote.p99_ns", op: "<=", bound: 5e6},
	}
	if len(reqs) != len(want) {
		t.Fatalf("parsed %d clauses, want %d", len(reqs), len(want))
	}
	for i := range want {
		if reqs[i] != want[i] {
			t.Errorf("clause %d = %+v, want %+v", i, reqs[i], want[i])
		}
	}
	for _, bad := range []string{"nonsense", ">=5", "a>b", "x>=notanumber"} {
		if _, err := parseRequires(bad); err == nil {
			t.Errorf("clause %q accepted", bad)
		}
	}
	if reqs, err := parseRequires(""); err != nil || len(reqs) != 0 {
		t.Errorf("empty spec: %v, %d clauses", err, len(reqs))
	}
}

func TestCheckRequires(t *testing.T) {
	fresh := flat(t, `{"remote":{"verified":200,"qps":50000}}`)
	var buf strings.Builder
	reqs := []requirement{
		{path: "remote.verified", op: ">=", bound: 200}, // ok (boundary)
		{path: "remote.qps", op: ">=", bound: 60000},    // fail
		{path: "remote.absent", op: ">=", bound: 1},     // fail (missing)
		{path: "remote.qps", op: "<=", bound: 60000},    // ok
	}
	if failed := checkRequires(fresh, reqs, &buf); failed != 2 {
		t.Fatalf("failed = %d, want 2\n%s", failed, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "path missing") {
		t.Errorf("missing-path verdict absent:\n%s", out)
	}
}
