package trapp_test

// Cancellation-consistency stress test: clients execute refresh-heavy
// queries under aggressive deadlines while updaters mutate master
// values, with simulated network latency so deadlines genuinely expire
// mid-refresh-fan-out. A cut-off request must return the best interval
// achieved so far (typed ErrPrecisionUnmet when the constraint is
// unmet), the refreshes that beat the cutoff must be charged exactly
// once, and — the core invariant — the cache must stay consistent: after
// the chaos, a quiescent precise query still returns exactly the true
// answer, proving no canceled fan-out left a torn bound or a stale
// value resurrected in the cached table. Runs race-clean under -race.

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"trapp"
)

func TestCancellationMidRefreshCacheConsistency(t *testing.T) {
	sys, keys := buildStressSystem(t)
	defer sys.Close()
	// Simulated wire time: refresh batches now take real time, so short
	// deadlines hit mid-fan-out (some per-source batches land, some are
	// cut) rather than before the first fetch.
	sys.Net.SetLatency(100 * time.Microsecond)
	aggs := []trapp.Func{trapp.Sum, trapp.Avg, trapp.Min, trapp.Max}

	var updaters sync.WaitGroup
	stop := make(chan struct{})
	for u := 0; u < 2; u++ {
		updaters.Add(1)
		go func(seed int64) {
			defer updaters.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := keys[rng.Intn(len(keys))]
				src := sys.Source(fmt.Sprintf("s%d", key/1000))
				v := stressBase(key) + (rng.Float64()*2-1)*stressD
				if err := src.SetValue(key, []float64{v}); err != nil {
					t.Errorf("SetValue(%d): %v", key, err)
					return
				}
				if i%25 == 24 {
					sys.Clock.Advance(1)
				}
			}
		}(int64(u) + 1)
	}

	var clients sync.WaitGroup
	var unmetSeen, cleanSeen int64
	var counterMu sync.Mutex
	for cl := 0; cl < 6; cl++ {
		clients.Add(1)
		go func(seed int64) {
			defer clients.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 120; i++ {
				agg := aggs[rng.Intn(len(aggs))]
				q := trapp.NewQuery("vals", agg, "value")
				q.Within = []float64{0, 2, 5}[rng.Intn(3)] // refresh-heavy
				// Deadlines from "expires immediately" to "usually enough
				// for the full fan-out".
				dl := time.Now().Add(time.Duration(rng.Intn(600)) * time.Microsecond)
				res, err := sys.ExecuteCtx(context.Background(), q, trapp.WithDeadline(dl))
				env := envelope(agg, keys)
				var unmet trapp.ErrPrecisionUnmet
				switch {
				case err == nil:
					counterMu.Lock()
					cleanSeen++
					counterMu.Unlock()
				case errors.As(err, &unmet):
					if !errors.Is(err, context.DeadlineExceeded) {
						t.Errorf("ErrPrecisionUnmet without deadline cause: %v", err)
						return
					}
					if unmet.Achieved != res.Answer {
						t.Errorf("Achieved %v != returned answer %v", unmet.Achieved, res.Answer)
						return
					}
					if unmet.Spent != res.RefreshCost {
						t.Errorf("Spent %g != RefreshCost %g", unmet.Spent, res.RefreshCost)
						return
					}
					counterMu.Lock()
					unmetSeen++
					counterMu.Unlock()
				case errors.Is(err, context.DeadlineExceeded):
					// Expired before the scan (zero result) or after the
					// constraint already held; no answer to check.
					continue
				default:
					t.Errorf("query %v: %v", q, err)
					return
				}
				// Best-effort answers are still sound: they must intersect
				// the achievable envelope.
				if !res.Answer.IsEmpty() && res.Answer.Intersect(env).IsEmpty() {
					t.Errorf("query %v: best-effort answer %v misses envelope %v", q, res.Answer, env)
					return
				}
			}
		}(int64(cl) + 500)
	}
	clients.Wait()
	close(stop)
	updaters.Wait()

	if unmetSeen == 0 || cleanSeen == 0 {
		t.Logf("coverage note: unmet=%d clean=%d (both sides exercised is ideal)", unmetSeen, cleanSeen)
	}

	// Quiescent phase: canceled fan-outs must not have corrupted the
	// cache. A precise query (no deadline) recovers the exact truth, and
	// bounded answers contain it.
	sys.Net.SetLatency(0)
	sys.Clock.Advance(1)
	for _, agg := range aggs {
		truth := trueAggregate(t, sys, agg, keys)
		res, err := sys.ExecuteCtx(context.Background(),
			trapp.NewQuery("vals", agg, "value"), trapp.WithMode(trapp.ModePrecise))
		if err != nil {
			t.Fatalf("quiescent precise %v: %v", agg, err)
		}
		if !res.Answer.Expand(stressRefreshEps).Contains(truth) || res.Answer.Width() > stressRefreshEps {
			t.Errorf("quiescent precise %v: answer %v, want point at %g", agg, res.Answer, truth)
		}
		bounded, err := sys.ExecuteCtx(context.Background(), func() trapp.Query {
			q := trapp.NewQuery("vals", agg, "value")
			q.Within = 10
			return q
		}())
		if err != nil {
			t.Fatalf("quiescent bounded %v: %v", agg, err)
		}
		if !bounded.Answer.Expand(stressRefreshEps).Contains(truth) {
			t.Errorf("quiescent bounded %v: %v does not contain %g", agg, bounded.Answer, truth)
		}
	}
	if st := sys.Stats(); st.QueryRefreshCost < 0 || math.IsNaN(st.QueryRefreshCost) {
		t.Errorf("accounting corrupted: %+v", st)
	}
}
