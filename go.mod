module trapp

go 1.24
