package trapp_test

// Concurrent-execution stress test for the thread-safe query engine:
// many goroutines issue mixed precise/imprecise/WITHIN queries against
// one shared System while updater goroutines mutate master values and
// advance the clock. It is designed to run race-clean under
// `go test -race`.
//
// Soundness assertions come in two strengths:
//
//   - During the chaos phase, updaters confine every master value of key
//     k to a fixed envelope [base_k − D, base_k + D]. Every per-key bound
//     a query can observe contains SOME value the key actually held, so
//     any aggregate answer must intersect the aggregate's achievable
//     envelope (e.g. [Σ(base−D), Σ(base+D)] for SUM). An engine that
//     reads torn or fabricated bounds fails this.
//   - After the updaters stop (quiescent phase), the true answer is
//     computable from the sources' master values, and every returned
//     interval must strictly contain it — the paper's central guarantee.
//     Precise-mode answers must equal it exactly.

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"trapp"
	"trapp/internal/relation"
)

const (
	stressSources    = 4
	stressPerSource  = 20
	stressD          = 4  // updates stay within base ± D
	stressWidth      = 10 // promised bound width parameter (> 2D)
	stressClients    = 8
	stressQueries    = 150
	stressUpdaters   = 2
	stressUpdates    = 1500
	stressRefreshEps = 1e-6
)

// stressBase is the anchor value of object key; updaters never move the
// master value outside [stressBase(key)−D, stressBase(key)+D].
func stressBase(key int64) float64 { return 100 + float64(key%97) }

// buildStressSystem wires stressSources sources × stressPerSource
// objects into one cache mounted as "vals", single bounded column
// "value".
func buildStressSystem(t *testing.T) (*trapp.System, []int64) {
	t.Helper()
	sys := trapp.NewSystem(trapp.Options{})
	schema := trapp.NewSchema(trapp.Column{Name: "value", Kind: trapp.Bounded})
	c, err := sys.AddCache("monitor", schema)
	if err != nil {
		t.Fatal(err)
	}
	var keys []int64
	for si := 0; si < stressSources; si++ {
		src, err := sys.AddSource(fmt.Sprintf("s%d", si), nil)
		if err != nil {
			t.Fatal(err)
		}
		for oi := 0; oi < stressPerSource; oi++ {
			key := int64(si*1000 + oi)
			cost := float64(1 + (si+oi)%5)
			if err := src.AddObject(key, []float64{stressBase(key)}, cost,
				trapp.NewAdaptiveWidth(stressWidth)); err != nil {
				t.Fatal(err)
			}
			if err := c.Subscribe(src, key, nil); err != nil {
				t.Fatal(err)
			}
			keys = append(keys, key)
		}
	}
	if err := sys.Mount("vals", c); err != nil {
		t.Fatal(err)
	}
	return sys, keys
}

// envelope returns the achievable range of the aggregate when every key
// k holds some value in [base_k−D, base_k+D].
func envelope(agg trapp.Func, keys []int64) trapp.Interval {
	minB, maxB, sumB := math.Inf(1), math.Inf(-1), 0.0
	for _, k := range keys {
		b := stressBase(k)
		minB = math.Min(minB, b)
		maxB = math.Max(maxB, b)
		sumB += b
	}
	n := float64(len(keys))
	switch agg {
	case trapp.Min:
		return trapp.NewInterval(minB-stressD, minB+stressD)
	case trapp.Max:
		return trapp.NewInterval(maxB-stressD, maxB+stressD)
	case trapp.Sum:
		return trapp.NewInterval(sumB-n*stressD, sumB+n*stressD)
	case trapp.Avg:
		return trapp.NewInterval(sumB/n-stressD, sumB/n+stressD)
	default: // Count: membership never changes
		return trapp.Point(n)
	}
}

// trueAggregate computes the exact answer from the sources' current
// master values; only meaningful while updaters are quiescent.
func trueAggregate(t *testing.T, sys *trapp.System, agg trapp.Func, keys []int64) float64 {
	t.Helper()
	minV, maxV, sumV := math.Inf(1), math.Inf(-1), 0.0
	for si := 0; si < stressSources; si++ {
		src := sys.Source(fmt.Sprintf("s%d", si))
		for oi := 0; oi < stressPerSource; oi++ {
			key := int64(si*1000 + oi)
			v, ok := src.Values(key)
			if !ok {
				t.Fatalf("source s%d lost object %d", si, key)
			}
			minV = math.Min(minV, v[0])
			maxV = math.Max(maxV, v[0])
			sumV += v[0]
		}
	}
	switch agg {
	case trapp.Min:
		return minV
	case trapp.Max:
		return maxV
	case trapp.Sum:
		return sumV
	case trapp.Avg:
		return sumV / float64(len(keys))
	default:
		return float64(len(keys))
	}
}

func TestConcurrentExecuteSoundness(t *testing.T) {
	sys, keys := buildStressSystem(t)
	aggs := []trapp.Func{trapp.Sum, trapp.Avg, trapp.Min, trapp.Max, trapp.Count}

	// Updaters: random walks confined to the per-key envelope, with
	// occasional clock advances so bounds grow and queries must refresh.
	var updaters sync.WaitGroup
	for u := 0; u < stressUpdaters; u++ {
		updaters.Add(1)
		go func(seed int64) {
			defer updaters.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < stressUpdates; i++ {
				key := keys[rng.Intn(len(keys))]
				src := sys.Source(fmt.Sprintf("s%d", key/1000))
				v := stressBase(key) + (rng.Float64()*2-1)*stressD
				if err := src.SetValue(key, []float64{v}); err != nil {
					t.Errorf("SetValue(%d): %v", key, err)
					return
				}
				if i%50 == 49 {
					sys.Clock.Advance(1)
				}
			}
		}(int64(u) + 1)
	}

	// Clients: closed loops of mixed queries. Each asserts the envelope
	// invariant on every answer.
	var clients sync.WaitGroup
	for cl := 0; cl < stressClients; cl++ {
		clients.Add(1)
		go func(seed int64) {
			defer clients.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < stressQueries; i++ {
				agg := aggs[rng.Intn(len(aggs))]
				q := trapp.NewQuery("vals", agg, "value")
				var (
					res trapp.Result
					err error
				)
				switch mode := rng.Intn(5); mode {
				case 0:
					res, err = sys.ExecuteCtx(context.Background(), q, trapp.WithMode(trapp.ModeImprecise))
				case 1:
					res, err = sys.ExecuteCtx(context.Background(), q, trapp.WithMode(trapp.ModePrecise))
				case 2:
					q.Within = []float64{5, 20, 80}[rng.Intn(3)]
					res, err = sys.ExecuteCtx(context.Background(), q)
				case 3:
					// Cost-budgeted dual under chaos; budget exhaustion is
					// an expected outcome, not a failure.
					q.Within = []float64{5, 20}[rng.Intn(2)]
					res, err = sys.ExecuteCtx(context.Background(), q, trapp.WithCostBudget(float64(5+rng.Intn(40))))
					if errors.Is(err, trapp.ErrBudgetExhausted{}) {
						err = nil
					}
				default:
					sql := fmt.Sprintf("SELECT %s(value) WITHIN 60 FROM vals", agg)
					q, err = trapp.ParseQuery(sql, sys)
					if err == nil {
						res, err = sys.ExecuteCtx(context.Background(), q)
					}
				}
				if err != nil {
					t.Errorf("query %v: %v", q, err)
					return
				}
				if res.Answer.IsEmpty() {
					t.Errorf("query %v: empty answer over nonempty table", q)
					return
				}
				env := envelope(agg, keys)
				if res.Answer.Intersect(env).IsEmpty() {
					t.Errorf("query %v: answer %v misses achievable envelope %v", q, res.Answer, env)
					return
				}
				if res.Met && !math.IsInf(q.Within, 1) && res.Answer.Width() > q.Within+stressRefreshEps {
					t.Errorf("query %v: Met but width %g > R=%g", q, res.Answer.Width(), q.Within)
					return
				}
			}
		}(int64(cl) + 100)
	}

	updaters.Wait()
	clients.Wait()

	// Quiescent phase: the true answer is now stable, so the paper's
	// containment guarantee must hold exactly.
	sys.Clock.Advance(1)
	for _, agg := range aggs {
		truth := trueAggregate(t, sys, agg, keys)
		q := trapp.NewQuery("vals", agg, "value")
		q.Within = 10
		res, err := sys.ExecuteCtx(context.Background(), q)
		if err != nil {
			t.Fatalf("quiescent %v: %v", agg, err)
		}
		if !res.Met {
			t.Errorf("quiescent %v: constraint not met, answer %v", agg, res.Answer)
		}
		// Expand by a float-roundoff tolerance: the engine and this test
		// sum master values in different orders.
		if !res.Answer.Expand(stressRefreshEps).Contains(truth) {
			t.Errorf("quiescent %v: answer %v does not contain true %g", agg, res.Answer, truth)
		}
		pres, err := sys.ExecuteCtx(context.Background(), trapp.NewQuery("vals", agg, "value"), trapp.WithMode(trapp.ModePrecise))
		if err != nil {
			t.Fatalf("precise %v: %v", agg, err)
		}
		if !pres.Answer.Expand(stressRefreshEps).Contains(truth) || pres.Answer.Width() > stressRefreshEps {
			t.Errorf("precise %v: answer %v, want point at %g", agg, pres.Answer, truth)
		}
	}

	// Traffic accounting survived the chaos: refresh messages were
	// recorded and counters are internally consistent.
	st := sys.Stats()
	if st.Total() <= 0 {
		t.Error("no traffic recorded despite refreshes")
	}
	if st.QueryRefreshCost < 0 || st.ValueRefreshCost < 0 {
		t.Errorf("negative refresh costs: %+v", st)
	}
}

// --- Hot-shard stress test ------------------------------------------------
//
// All updaters hammer keys that hash to ONE store shard while query
// clients run the usual mixed workload over the whole table plus a
// cold-only selection (an exact-column predicate matching only keys on
// other shards), and a standing SUM subscription validates every pushed
// update. Under -race this exercises the worst case for per-shard
// locking — a single write-hot shard — and asserts that envelope
// soundness holds and that queries not needing the hot shard's refreshes
// still complete their full quota.

// hotShardKeys partitions candidate keys by whether they hash to the
// same store shard as anchor, using a probe store with the same (default)
// shard count as the system cache.
func hotShardKeys(schema *trapp.Schema, anchor int64, nHot, nCold int) (hot, cold []int64) {
	probe := relation.NewStore(schema, 0)
	target := probe.ShardOf(anchor)
	for key := anchor; len(hot) < nHot || len(cold) < nCold; key++ {
		if probe.ShardOf(key) == target {
			if len(hot) < nHot {
				hot = append(hot, key)
			}
		} else if len(cold) < nCold {
			cold = append(cold, key)
		}
	}
	return hot, cold
}

func TestConcurrentHotShardSoundness(t *testing.T) {
	const (
		hotN, coldN = 24, 48
		hotUpdaters = 4
		hotUpdates  = 1200
		hotClients  = 8
		hotQueries  = 120
		coldGroup   = 1.0
	)
	sys := trapp.NewSystem(trapp.Options{})
	schema := trapp.NewSchema(
		trapp.Column{Name: "grp", Kind: trapp.Exact},
		trapp.Column{Name: "value", Kind: trapp.Bounded},
	)
	c, err := sys.AddCache("monitor", schema)
	if err != nil {
		t.Fatal(err)
	}
	hot, cold := hotShardKeys(schema, 1, hotN, coldN)
	// Sanity: the scenario is only meaningful with a truly hot shard.
	if c.Store().NumShards() < 2 {
		t.Skip("default store is unsharded")
	}
	if want := c.Store().ShardOf(hot[0]); c.Store().ShardOf(hot[len(hot)-1]) != want {
		t.Fatal("hot keys spread over several shards")
	}
	subscribe := func(keys []int64, grp float64, srcName string) {
		src, err := sys.AddSource(srcName, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, key := range keys {
			cost := float64(1 + key%5)
			if err := src.AddObject(key, []float64{stressBase(key)}, cost,
				trapp.NewAdaptiveWidth(stressWidth)); err != nil {
				t.Fatal(err)
			}
			if err := c.Subscribe(src, key, []float64{grp}); err != nil {
				t.Fatal(err)
			}
		}
	}
	subscribe(hot[:hotN/2], 0, "hot0")
	subscribe(hot[hotN/2:], 0, "hot1")
	subscribe(cold[:coldN/2], coldGroup, "cold0")
	subscribe(cold[coldN/2:], coldGroup, "cold1")
	if err := sys.Mount("vals", c); err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	all := append(append([]int64(nil), hot...), cold...)

	// Standing SUM subscription over the whole table: every delivered
	// update must intersect the achievable envelope.
	subQ := trapp.NewQuery("vals", trapp.Sum, "value")
	subQ.Within = 4 * stressD * float64(len(all))
	sub, err := sys.Subscribe(subQ)
	if err != nil {
		t.Fatal(err)
	}
	var drainer sync.WaitGroup
	drainer.Add(1)
	go func() {
		defer drainer.Done()
		env := envelope(trapp.Sum, all)
		for u := range sub.Updates() {
			if u.Answer.Intersect(env).IsEmpty() {
				t.Errorf("subscription answer %v misses envelope %v", u.Answer, env)
				return
			}
		}
	}()

	srcOf := func(key int64) *trapp.Source {
		for _, name := range []string{"hot0", "hot1"} {
			src := sys.Source(name)
			if _, ok := src.Values(key); ok {
				return src
			}
		}
		t.Fatalf("no source owns hot key %d", key)
		return nil
	}
	// Updaters: ALL of them hammer only hot-shard keys.
	var updaters sync.WaitGroup
	for u := 0; u < hotUpdaters; u++ {
		updaters.Add(1)
		go func(seed int64) {
			defer updaters.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < hotUpdates; i++ {
				key := hot[rng.Intn(len(hot))]
				v := stressBase(key) + (rng.Float64()*2-1)*stressD
				if err := srcOf(key).SetValue(key, []float64{v}); err != nil {
					t.Errorf("SetValue(%d): %v", key, err)
					return
				}
				if i%60 == 59 {
					sys.Clock.Advance(1)
				}
			}
		}(int64(u) + 31)
	}

	// Clients: mixed whole-table queries plus cold-only selections; count
	// completions so starvation (a query stuck behind the hot shard)
	// fails the test rather than hanging it.
	coldPred := trapp.NewCmp(trapp.PredColumn(0, "grp"), trapp.Eq, trapp.PredConst(coldGroup))
	aggs := []trapp.Func{trapp.Sum, trapp.Avg, trapp.Min, trapp.Max, trapp.Count}
	var completedCold, completedAll int64
	var cmu sync.Mutex
	var clients sync.WaitGroup
	for cl := 0; cl < hotClients; cl++ {
		clients.Add(1)
		go func(seed int64) {
			defer clients.Done()
			rng := rand.New(rand.NewSource(seed))
			nCold, nAll := int64(0), int64(0)
			for i := 0; i < hotQueries; i++ {
				agg := aggs[rng.Intn(len(aggs))]
				q := trapp.NewQuery("vals", agg, "value")
				coldOnly := i%2 == 0
				if coldOnly {
					q.Where = coldPred
				}
				q.Within = []float64{20, 80}[rng.Intn(2)]
				res, err := sys.ExecuteCtx(context.Background(), q)
				if err != nil {
					t.Errorf("query %v: %v", q, err)
					return
				}
				keys := all
				if coldOnly {
					keys = cold
					nCold++
				} else {
					nAll++
				}
				env := envelope(agg, keys)
				if res.Answer.IsEmpty() || res.Answer.Intersect(env).IsEmpty() {
					t.Errorf("query %v: answer %v misses envelope %v", q, res.Answer, env)
					return
				}
			}
			cmu.Lock()
			completedCold += nCold
			completedAll += nAll
			cmu.Unlock()
		}(int64(cl) + 900)
	}

	updaters.Wait()
	clients.Wait()
	if want := int64(hotClients * hotQueries / 2); completedCold != want || completedAll != want {
		t.Errorf("completed %d cold-only and %d whole-table queries, want %d each",
			completedCold, completedAll, want)
	}

	// Quiescent phase: containment of the true aggregate, per key subset.
	sys.Clock.Advance(1)
	sys.Settle()
	truth := func(keys []int64) float64 {
		var sum float64
		for _, key := range keys {
			var v []float64
			var ok bool
			for _, name := range []string{"hot0", "hot1", "cold0", "cold1"} {
				if v, ok = sys.Source(name).Values(key); ok {
					break
				}
			}
			if !ok {
				t.Fatalf("lost key %d", key)
			}
			sum += v[0]
		}
		return sum
	}
	q := trapp.NewQuery("vals", trapp.Sum, "value")
	q.Within = 10
	res, err := sys.ExecuteCtx(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Met || !res.Answer.Expand(stressRefreshEps).Contains(truth(all)) {
		t.Errorf("quiescent SUM %v (met=%v) does not contain true %g", res.Answer, res.Met, truth(all))
	}
	sub.Close()
	drainer.Wait()
}

// --- Subscription stress test ---------------------------------------------
//
// The push-based continuous-query engine under chaos: many subscribers
// (scalar, GROUP BY, unconstrained) over one shared table while updater
// goroutines push confined random-walk values and advance the clock, with
// the engine's maintainer goroutine repairing violated constraints in the
// background. Race-clean under `go test -race`.
//
// Assertions mirror TestConcurrentExecuteSoundness:
//   - every delivered update's answer intersects the achievable envelope
//     of values the objects actually held (per group for GROUP BY);
//   - a Met scalar update with an absolute constraint has width ≤ R;
//   - after the updaters stop and the engine settles, every
//     subscription's current answer contains the unique true aggregate
//     and its precision constraint is re-established.

const (
	subStressGroups   = 4
	subStressUpdaters = 2
	subStressUpdates  = 1200
)

// buildSubscriptionStressSystem wires stressSources×stressPerSource
// objects into a cache mounted as "vals" with schema (grp Exact, value
// Bounded); grp = key % subStressGroups.
func buildSubscriptionStressSystem(t *testing.T) (*trapp.System, []int64) {
	t.Helper()
	sys := trapp.NewSystem(trapp.Options{})
	schema := trapp.NewSchema(
		trapp.Column{Name: "grp", Kind: trapp.Exact},
		trapp.Column{Name: "value", Kind: trapp.Bounded},
	)
	c, err := sys.AddCache("monitor", schema)
	if err != nil {
		t.Fatal(err)
	}
	var keys []int64
	for si := 0; si < stressSources; si++ {
		src, err := sys.AddSource(fmt.Sprintf("s%d", si), nil)
		if err != nil {
			t.Fatal(err)
		}
		for oi := 0; oi < stressPerSource; oi++ {
			key := int64(si*1000 + oi)
			cost := float64(1 + (si+oi)%5)
			if err := src.AddObject(key, []float64{stressBase(key)}, cost,
				trapp.NewAdaptiveWidth(stressWidth)); err != nil {
				t.Fatal(err)
			}
			if err := c.Subscribe(src, key, []float64{float64(key % subStressGroups)}); err != nil {
				t.Fatal(err)
			}
			keys = append(keys, key)
		}
	}
	if err := sys.Mount("vals", c); err != nil {
		t.Fatal(err)
	}
	return sys, keys
}

// groupKeys filters keys by group id.
func groupKeys(keys []int64, g int64) []int64 {
	var out []int64
	for _, k := range keys {
		if k%subStressGroups == g {
			out = append(out, k)
		}
	}
	return out
}

// trueAggregateOf computes the exact aggregate over the given keys from
// the sources' master values; meaningful only while updaters are
// quiescent.
func trueAggregateOf(t *testing.T, sys *trapp.System, agg trapp.Func, keys []int64) float64 {
	t.Helper()
	minV, maxV, sumV := math.Inf(1), math.Inf(-1), 0.0
	for _, key := range keys {
		src := sys.Source(fmt.Sprintf("s%d", key/1000))
		v, ok := src.Values(key)
		if !ok {
			t.Fatalf("source lost object %d", key)
		}
		minV = math.Min(minV, v[0])
		maxV = math.Max(maxV, v[0])
		sumV += v[0]
	}
	switch agg {
	case trapp.Min:
		return minV
	case trapp.Max:
		return maxV
	case trapp.Sum:
		return sumV
	case trapp.Avg:
		return sumV / float64(len(keys))
	default:
		return float64(len(keys))
	}
}

func TestConcurrentSubscriptionSoundness(t *testing.T) {
	sys, keys := buildSubscriptionStressSystem(t)
	defer sys.Close()
	aggs := []trapp.Func{trapp.Sum, trapp.Avg, trapp.Min, trapp.Max, trapp.Count}

	// Register subscriptions: two precision levels per aggregate, one
	// unconstrained change feed, and one GROUP BY per-group standing
	// query. Each subscription gets a drainer goroutine validating every
	// delivered update against the achievable envelope.
	type subCase struct {
		sub     *trapp.Subscription
		agg     trapp.Func
		within  float64 // 0 means unconstrained
		grouped bool
	}
	var cases []subCase
	for _, agg := range aggs {
		for _, r := range []float64{20, 80} {
			q := trapp.NewQuery("vals", agg, "value")
			q.Within = r
			sub, err := sys.Subscribe(q)
			if err != nil {
				t.Fatal(err)
			}
			cases = append(cases, subCase{sub, agg, r, false})
		}
	}
	{
		q := trapp.NewQuery("vals", trapp.Sum, "value") // unconstrained feed
		sub, err := sys.Subscribe(q)
		if err != nil {
			t.Fatal(err)
		}
		cases = append(cases, subCase{sub, trapp.Sum, 0, false})
	}
	{
		q := trapp.NewQuery("vals", trapp.Sum, "value")
		q.Within = 40
		q.GroupBy = []string{"grp"}
		sub, err := sys.Subscribe(q)
		if err != nil {
			t.Fatal(err)
		}
		cases = append(cases, subCase{sub, trapp.Sum, 40, true})
	}

	var drainers sync.WaitGroup
	for _, sc := range cases {
		drainers.Add(1)
		go func(sc subCase) {
			defer drainers.Done()
			for u := range sc.sub.Updates() {
				if sc.grouped {
					for _, ga := range u.Groups {
						env := envelope(sc.agg, groupKeys(keys, int64(ga.Key[0])))
						if ga.Answer.Intersect(env).IsEmpty() {
							t.Errorf("group %v answer %v misses envelope %v", ga.Key, ga.Answer, env)
							return
						}
					}
					continue
				}
				env := envelope(sc.agg, keys)
				if u.Answer.Intersect(env).IsEmpty() {
					t.Errorf("%v sub answer %v misses envelope %v", sc.agg, u.Answer, env)
					return
				}
				if u.Met && sc.within > 0 && u.Answer.Width() > sc.within+stressRefreshEps {
					t.Errorf("%v sub met but width %g > R=%g", sc.agg, u.Answer.Width(), sc.within)
					return
				}
			}
		}(sc)
	}

	// Updaters: confined random walks with occasional clock advances,
	// exactly the chaos of TestConcurrentExecuteSoundness.
	var updaters sync.WaitGroup
	for u := 0; u < subStressUpdaters; u++ {
		updaters.Add(1)
		go func(seed int64) {
			defer updaters.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < subStressUpdates; i++ {
				key := keys[rng.Intn(len(keys))]
				src := sys.Source(fmt.Sprintf("s%d", key/1000))
				v := stressBase(key) + (rng.Float64()*2-1)*stressD
				if err := src.SetValue(key, []float64{v}); err != nil {
					t.Errorf("SetValue(%d): %v", key, err)
					return
				}
				if i%40 == 39 {
					sys.Clock.Advance(1)
				}
			}
		}(int64(u) + 7)
	}
	updaters.Wait()

	// Quiescent phase: settle and check the paper's guarantee on every
	// subscription's final maintained answer.
	sys.Clock.Advance(1)
	sys.Settle()
	for _, sc := range cases {
		cur, ok := sc.sub.Current()
		if !ok {
			t.Fatalf("%v sub never produced an answer", sc.agg)
		}
		if !cur.Met {
			t.Errorf("%v sub constraint not re-established: %+v", sc.agg, cur)
		}
		if sc.grouped {
			for _, ga := range cur.Groups {
				truth := trueAggregateOf(t, sys, sc.agg, groupKeys(keys, int64(ga.Key[0])))
				if !ga.Answer.Expand(stressRefreshEps).Contains(truth) {
					t.Errorf("group %v answer %v excludes true %g", ga.Key, ga.Answer, truth)
				}
			}
			continue
		}
		truth := trueAggregateOf(t, sys, sc.agg, keys)
		if !cur.Answer.Expand(stressRefreshEps).Contains(truth) {
			t.Errorf("%v sub answer %v excludes true %g", sc.agg, cur.Answer, truth)
		}
	}

	m := sys.SubscriptionMetrics()
	if m.Notifications == 0 || m.Rounds == 0 {
		t.Errorf("engine did no push work: %+v", m)
	}
	for _, sc := range cases {
		sc.sub.Close()
	}
	drainers.Wait()
}
