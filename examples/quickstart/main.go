// Command quickstart is the smallest complete TRAPP program: one source,
// one cache, three replicated temperature sensors, and a single bounded
// query with a precision constraint.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	"trapp"
)

func main() {
	// A TRAPP system bundles sources, caches, a logical clock, and the
	// query processor.
	sys := trapp.NewSystem(trapp.Options{})

	// The source owns the master copies: three sensors reporting degrees
	// Celsius, each with a refresh cost (e.g. radio wake-up cost).
	src, err := sys.AddSource("sensors", nil)
	if err != nil {
		log.Fatal(err)
	}
	temps := []float64{21.5, 19.0, 23.4}
	for i, v := range temps {
		// The adaptive width policy (paper Appendix A) widens bounds when
		// values escape and narrows them when queries pay for refreshes.
		if err := src.AddObject(int64(i+1), []float64{v}, float64(i+1), trapp.NewAdaptiveWidth(0.5)); err != nil {
			log.Fatal(err)
		}
	}

	// The cache replicates the sensors as a table: an exact id column and
	// a bounded temperature column.
	schema := trapp.NewSchema(
		trapp.Column{Name: "id", Kind: trapp.Exact},
		trapp.Column{Name: "celsius", Kind: trapp.Bounded},
	)
	cache, err := sys.AddCache("station", schema)
	if err != nil {
		log.Fatal(err)
	}
	for i := range temps {
		if err := cache.Subscribe(src, int64(i+1), []float64{float64(i + 1)}); err != nil {
			log.Fatal(err)
		}
	}
	if err := sys.Mount("readings", cache); err != nil {
		log.Fatal(err)
	}

	// Time passes; cached bounds grow like sqrt(elapsed); master values
	// drift.
	sys.Clock.Advance(100)
	if err := src.SetValue(2, []float64{19.8}); err != nil {
		log.Fatal(err)
	}

	// Ask for the average temperature to within 2 degrees. TRAPP combines
	// cached bounds with the cheapest refreshes needed to guarantee the
	// answer interval is no wider than 2.
	q, err := trapp.ParseQuery("SELECT AVG(celsius) WITHIN 2 FROM readings", sys)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.ExecuteCtx(context.Background(), q)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("query:            %s\n", q)
	fmt.Printf("initial bound:    %v (width %.2f, from cache only)\n", res.Initial, res.Initial.Width())
	fmt.Printf("final answer:     %v (width %.2f <= 2 guaranteed)\n", res.Answer, res.Answer.Width())
	fmt.Printf("tuples refreshed: %d (cost %.1f)\n", res.Refreshed, res.RefreshCost)
	fmt.Printf("network traffic:  %+v\n", sys.Stats().Messages)

	// The cost-bounded dual: "the narrowest answer you can give me for
	// at most 1 unit of refresh cost". Time passes, bounds regrow, and
	// the budget buys back as much precision as it can; if the WITHIN
	// constraint is out of reach the typed ErrBudgetExhausted reports
	// the best achieved interval instead of an opaque failure.
	sys.Clock.Advance(100)
	cheap, err := sys.ExecuteCtx(context.Background(), q, trapp.WithCostBudget(1))
	var exhausted trapp.ErrBudgetExhausted
	switch {
	case errors.As(err, &exhausted):
		fmt.Printf("budget 1:         %v (width %.2f — budget bought cost %.1f, constraint out of reach)\n",
			cheap.Answer, cheap.Answer.Width(), cheap.RefreshCost)
	case err != nil:
		log.Fatal(err)
	default:
		fmt.Printf("budget 1:         %v (width %.2f for cost %.1f)\n",
			cheap.Answer, cheap.Answer.Width(), cheap.RefreshCost)
	}
}
