// Command stockticker demonstrates the precision-performance tradeoff of
// the paper's section 5.2.1 experiment on a live portfolio: 90 synthetic
// volatile stocks are replicated into a cache as day-range bounds, and the
// same portfolio-value query is asked at a range of precision constraints.
// Relaxing the constraint lets the system rely more on cached bounds and
// pay less refresh cost — the continuous tradeoff of Figure 1(b).
//
// Run with:
//
//	go run ./examples/stockticker
package main

import (
	"context"
	"fmt"
	"log"

	"trapp"
	"trapp/internal/workload"
)

func main() {
	quotes := workload.StockDay(90, 20000615)

	fmt.Println("TRAPP stock ticker — 90 volatile stocks, SUM(price) at varying precision")
	fmt.Println()
	fmt.Printf("%-12s %-22s %-10s %-10s\n", "WITHIN R", "answer [lo, hi]", "refreshed", "cost")

	var fullCost float64
	for _, q := range quotes {
		fullCost += q.Cost
	}

	for _, r := range []float64{1000, 500, 200, 100, 50, 20, 5, 0} {
		// Fresh cache per constraint so runs are comparable.
		table := workload.StockTable(quotes)
		proc := trapp.NewProcessor(trapp.Options{Epsilon: 0.1})
		proc.Register("stocks", table, workload.StockMaster(quotes))

		sql := fmt.Sprintf("SELECT SUM(price) WITHIN %g FROM stocks", r)
		query, err := trapp.ParseQueryWith(sql, map[string]*trapp.Schema{
			"stocks": workload.StockSchema(),
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := proc.ExecuteCtx(context.Background(), query)
		if err != nil {
			log.Fatal(err)
		}
		if !res.Met {
			log.Fatalf("R=%g not met", r)
		}
		fmt.Printf("%-12g [%9.2f, %9.2f]  %-10d %-10.0f\n",
			r, res.Answer.Lo, res.Answer.Hi, res.Refreshed, res.RefreshCost)
	}

	fmt.Println()
	fmt.Printf("precise mode (R=0) pays the full cost of %0.f; wide constraints approach 0.\n", fullCost)
	fmt.Println("This is the continuous precision-performance curve of the paper's Figure 6.")
}
