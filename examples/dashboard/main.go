// Command dashboard exercises the repository's section 8 extensions on
// the network monitoring scenario: a per-node GROUP BY report, a relative
// (percentage) precision constraint, an iterative (online) execution, and
// a bounded MEDIAN — all over the paper's Figure 2 data.
//
// Run with:
//
//	go run ./examples/dashboard
package main

import (
	"fmt"
	"log"

	"trapp"
	"trapp/internal/quantile"
	"trapp/internal/workload"
)

func main() {
	fmt.Println("TRAPP dashboard — §8 extensions over the Figure 2 network")
	fmt.Println()

	schemas := map[string]*trapp.Schema{"links": workload.LinkSchema()}
	master := workload.MapOracle(workload.Figure2Master())

	// 1. GROUP BY: exact per-source-node latency totals.
	{
		proc := trapp.NewProcessor(trapp.Options{})
		proc.Register("links", workload.Figure2Table(), master)
		q, err := trapp.ParseQueryWith(
			"SELECT SUM(latency) WITHIN 0 FROM links GROUP BY from", schemas)
		if err != nil {
			log.Fatal(err)
		}
		rows, err := proc.ExecuteGroupBy(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("per-node outgoing latency (GROUP BY from, WITHIN 0):")
		for _, row := range rows {
			fmt.Printf("  node %.0f: %v (cost %.0f)\n",
				row.Key[0], row.Result.Answer, row.Result.RefreshCost)
		}
		fmt.Println()
	}

	// 2. Relative constraint: total traffic within 2%.
	{
		proc := trapp.NewProcessor(trapp.Options{})
		proc.Register("links", workload.Figure2Table(), master)
		q, err := trapp.ParseQueryWith(
			"SELECT SUM(traffic) WITHIN 2% FROM links", schemas)
		if err != nil {
			log.Fatal(err)
		}
		res, err := proc.Execute(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("total traffic WITHIN 2%%: %v (width %.1f, refreshed %d, cost %.0f)\n\n",
			res.Answer, res.Answer.Width(), res.Refreshed, res.RefreshCost)
	}

	// 3. Iterative execution: same query as the paper's Q2, paying
	// refreshes one at a time and stopping early.
	{
		proc := trapp.NewProcessor(trapp.Options{})
		table := workload.Figure2Table()
		table.Delete(3)
		table.Delete(4)
		proc.Register("links", table, master)
		q, err := trapp.ParseQueryWith(
			"SELECT SUM(latency) WITHIN 5 FROM links", schemas)
		if err != nil {
			log.Fatal(err)
		}
		res, err := proc.ExecuteIterative(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Q2 iterative: %v after %d single-tuple rounds (cost %.0f; batch pays 5)\n\n",
			res.Answer, res.Refreshed, res.RefreshCost)
	}

	// 4. Bounded MEDIAN with a precision constraint.
	{
		table := workload.Figure2Table()
		lat := table.Schema().MustLookup(workload.ColLatency)
		initial := quantile.Median(table, lat)
		res, err := quantile.ExecuteMedian(table, lat, 1, master)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("median latency: cached %v → WITHIN 1 gives %v (refreshed %d, cost %.0f)\n",
			initial, res.Answer, res.Refreshed, res.RefreshCost)
	}
}
