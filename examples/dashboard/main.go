// Command dashboard is a live network-operations dashboard built on the
// push-based continuous-query engine (§8.1): instead of polling, each
// panel registers a standing query with System.Subscribe and receives a
// notification only when its bounded answer actually moves or its
// precision constraint has to be repaired. Three panels run over a
// simulated link table:
//
//   - total latency WITHIN 5 (absolute constraint),
//   - total traffic WITHIN 2% (relative constraint),
//   - per-node outgoing latency WITHIN 4 GROUP BY from (one maintained
//     answer per group — rejected outright by the old poll Monitor).
//
// The engine maintains all three incrementally while links drift and the
// clock ticks, dedupes their refresh demand into shared batches, and
// stays silent for panels whose answers did not change.
//
// Each panel's subscription is bound to a context (SubscribeCtx), so a
// canceled dashboard tears its standing queries down without explicit
// Close calls.
//
// Run with:
//
//	go run ./examples/dashboard
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"trapp"
	"trapp/internal/workload"
)

func main() {
	fmt.Println("TRAPP dashboard — push subscriptions over a drifting link table")
	fmt.Println()

	// One cache replicating 24 links spread across 4 sources.
	net, err := workload.NewNetwork(6, 24, 7)
	if err != nil {
		log.Fatal(err)
	}
	sys := trapp.NewSystem(trapp.Options{})
	defer sys.Close()
	cache, err := sys.AddCache("monitor", workload.LinkSchema())
	if err != nil {
		log.Fatal(err)
	}
	var sources []*trapp.Source
	for si := 0; si < 4; si++ {
		src, err := sys.AddSource(fmt.Sprintf("s%d", si), nil)
		if err != nil {
			log.Fatal(err)
		}
		sources = append(sources, src)
	}
	for i, l := range net.Links {
		src := sources[i%len(sources)]
		if err := src.AddObject(l.Key, l.Values(), l.Cost, trapp.NewAdaptiveWidth(1)); err != nil {
			log.Fatal(err)
		}
		if err := cache.Subscribe(src, l.Key, []float64{float64(l.From), float64(l.To)}); err != nil {
			log.Fatal(err)
		}
	}
	if err := sys.Mount("links", cache); err != nil {
		log.Fatal(err)
	}

	// All three panels live exactly as long as this context.
	ctx, cancelPanels := context.WithCancel(context.Background())
	defer cancelPanels()

	// Panel 1: total latency, absolute constraint.
	qLatency, err := trapp.ParseQuery("SELECT SUM(latency) WITHIN 5 FROM links", sys)
	if err != nil {
		log.Fatal(err)
	}
	latency, err := sys.SubscribeCtx(ctx, qLatency)
	if err != nil {
		log.Fatal(err)
	}
	// Panel 2: total traffic, relative (§8.1 percentage) constraint.
	qTraffic, err := trapp.ParseQuery("SELECT SUM(traffic) WITHIN 2% FROM links", sys)
	if err != nil {
		log.Fatal(err)
	}
	traffic, err := sys.SubscribeCtx(ctx, qTraffic)
	if err != nil {
		log.Fatal(err)
	}
	// Panel 3: per-node outgoing latency — a GROUP BY standing query.
	qPerNode, err := trapp.ParseQuery("SELECT SUM(latency) WITHIN 4 FROM links GROUP BY from", sys)
	if err != nil {
		log.Fatal(err)
	}
	perNode, err := sys.SubscribeCtx(ctx, qPerNode)
	if err != nil {
		log.Fatal(err)
	}

	// render drains a panel's channel without blocking and prints the
	// freshest pending notification, if any.
	render := func(name string, sub *trapp.Subscription) {
		select {
		case u, ok := <-sub.Updates():
			if !ok {
				return
			}
			if len(u.Groups) > 0 {
				fmt.Printf("  %-12s seq %2d @t=%-3d", name, u.Seq, u.At)
				for _, g := range u.Groups {
					fmt.Printf("  node %.0f: %v", g.Key[0], g.Answer)
				}
				fmt.Println()
				return
			}
			fmt.Printf("  %-12s seq %2d @t=%-3d %v (width %.2f, met %v)\n",
				name, u.Seq, u.At, u.Answer, u.Answer.Width(), u.Met)
		default:
			fmt.Printf("  %-12s (quiet — answer unchanged)\n", name)
		}
	}

	// Drive the world: each round a few links drift and the clock ticks;
	// Settle makes the rendering deterministic for this example (a real
	// server would just let the engine's maintainer run).
	rng := rand.New(rand.NewSource(42))
	for round := 1; round <= 6; round++ {
		sys.Clock.Advance(3)
		for i := 0; i < 4; i++ {
			l := net.Links[rng.Intn(len(net.Links))]
			src := sources[int(l.Key-1)%len(sources)]
			if err := src.SetValue(l.Key, l.Step()); err != nil {
				log.Fatal(err)
			}
		}
		sys.Settle()
		fmt.Printf("round %d:\n", round)
		render("latency", latency)
		render("traffic 2%", traffic)
		render("per-node", perNode)
	}

	m := sys.SubscriptionMetrics()
	st := sys.Stats()
	fmt.Println()
	fmt.Printf("engine: %d rounds, %d notifications, %d refresh batches "+
		"(%d objects, cost %.0f, %d shared)\n",
		m.Rounds, m.Notifications, m.RefreshBatches, m.RefreshedObjects,
		m.RefreshCost, m.SharedRefreshes)
	fmt.Printf("network: query-refresh cost %.0f, value-refresh cost %.0f\n",
		st.QueryRefreshCost, st.ValueRefreshCost)
}
