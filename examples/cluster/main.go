// Command cluster boots a complete partitioned serving tier in one
// process tree: three partition servers each holding a consistent-hash
// shard of the link-monitoring table, a scatter-gather coordinator
// dialed to their framed listeners, and a single embedded system over
// the same tuples to demonstrate the cluster's defining property —
// every answer is bit-identical to single-node execution.
//
// Run with:
//
//	go run ./examples/cluster
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"time"

	"trapp/internal/experiment"
	"trapp/internal/partition"
	"trapp/internal/refresh"
	"trapp/internal/server"
	"trapp/internal/sql"
)

func main() {
	const (
		links   = 64
		sources = 4
		seed    = 7
		nodes   = 3
	)

	// Shard the workload: each partition owns the whole canonical
	// buckets the rendezvous ring assigns it.
	ids := experiment.PartitionIDs(nodes)
	systems, _, ring, err := experiment.BuildLinkPartitions(links, sources, seed, ids)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		for _, s := range systems {
			s.Close()
		}
	}()

	// One framed server per partition — the same listener a standalone
	// `trappserver -partition i/N` exposes.
	var remotes []partition.Node
	for i, sys := range systems {
		srv := server.New(sys, server.Config{
			FramedExt: partition.NewService(partition.NewLocalNode(ids[i], sys)),
		})
		ln, err := srv.ListenAndServeFramed("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Shutdown(context.Background())
		fmt.Printf("partition %s: buckets %v on %s\n", ids[i], ring.Buckets(i), ln.Addr())
		remotes = append(remotes, partition.NewRemoteNode(ids[i], ln.Addr().String()))
	}

	// The coordinator greets every node, checks the catalogs agree, and
	// serves the same HTTP surface a single trappserver does.
	cl, err := partition.New(context.Background(), remotes, partition.Config{
		Options:   refresh.Options{Solver: refresh.SolverGreedyDensity},
		OpTimeout: 2 * time.Second,
		Retries:   1,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	coord := server.NewEngine(cl, server.Config{Topology: cl.Topology})
	hs, ln, err := coord.ListenAndServe("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer hs.Shutdown(context.Background())
	defer coord.Shutdown(context.Background())
	base := "http://" + ln.Addr().String()
	fmt.Println("coordinator on", base)

	// A mirror single system over the identical tuples, for the parity
	// demonstration.
	single, _, err := experiment.BuildLinkSystem(links, sources, seed)
	if err != nil {
		log.Fatal(err)
	}
	defer single.Close()

	ask := func(sql string) string {
		body, _ := json.Marshal(map[string]any{"sql": sql})
		resp, err := http.Post(base+"/query", "application/json", bytes.NewReader(body))
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		var out struct {
			Results []struct {
				Answer struct{ Lo, Hi float64 } `json:"answer"`
				Met    bool                     `json:"met"`
			} `json:"results"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			log.Fatal(err)
		}
		r := out.Results[0]
		return fmt.Sprintf("[%.6f, %.6f] met=%v", r.Answer.Lo, r.Answer.Hi, r.Met)
	}

	for _, stmt := range []string{
		"SELECT SUM(links.latency) WITHIN 50 FROM links",
		"SELECT AVG(links.traffic) WITHIN 5 FROM links",
		"SELECT MAX(links.latency) WITHIN 10 FROM links WHERE links.traffic > 120",
	} {
		fmt.Printf("\n%s\n  cluster: %s\n", stmt, ask(stmt))
		q, err := sql.Parse(stmt, single.Catalog())
		if err != nil {
			log.Fatal(err)
		}
		res, err := single.ExecuteCtx(context.Background(), q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  single:  [%.6f, %.6f] met=%v   (bit-identical)\n",
			res.Answer.Lo, res.Answer.Hi, res.Met)
	}

	// The topology every node agrees on, straight from /healthz.
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var hz struct {
		Topology any `json:"topology"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		log.Fatal(err)
	}
	topo, _ := json.Marshal(hz.Topology)
	fmt.Printf("\ntopology: %s\n", topo)
}
