// Command netmonitor reproduces the paper's running example (section 1.1):
// a monitoring station caches bounded latency/bandwidth/traffic figures
// for the six network links of Figure 2 and answers the paper's queries
// Q1–Q6 with precision constraints, printing the bounded answers and
// refresh costs. The answers match the worked examples in sections 5–6
// and Appendices E–F — e.g. Q6 refreshes tuples {1,3,5,6} and returns
// AVG latency [8, 9].
//
// Run with:
//
//	go run ./examples/netmonitor
package main

import (
	"context"
	"fmt"
	"log"

	"trapp"
	"trapp/internal/workload"
)

func main() {
	fmt.Println("TRAPP network monitoring demo — Figure 2 data, queries Q1–Q6")
	fmt.Println()

	type step struct {
		label    string
		sql      string
		note     string
		pathOnly bool // Q1/Q2 run over the path links {1,2,5,6}
	}
	steps := []step{
		{"Q1", "SELECT MIN(bandwidth) WITHIN 10 FROM links",
			"bottleneck bandwidth along N1→N2→N4→N5→N6", true},
		{"Q2", "SELECT SUM(latency) WITHIN 5 FROM links",
			"total latency along the path", true},
		{"Q3", "SELECT AVG(traffic) WITHIN 10 FROM links",
			"average traffic over the whole network", false},
		{"Q4", "SELECT MIN(traffic) WITHIN 10 FROM links WHERE bandwidth > 50 AND latency < 10",
			"minimum traffic over fast links", false},
		{"Q5", "SELECT COUNT(latency) WITHIN 1 FROM links WHERE latency > 10",
			"number of high-latency links", false},
		{"Q6", "SELECT AVG(latency) WITHIN 2 FROM links WHERE traffic > 100",
			"average latency over high-traffic links", false},
	}

	schemas := map[string]*trapp.Schema{"links": workload.LinkSchema()}
	var totalCost float64
	for _, s := range steps {
		// Each query starts from the paper's original cached bounds, so
		// the worked examples reproduce exactly.
		table := workload.Figure2Table()
		if s.pathOnly {
			table.Delete(3)
			table.Delete(4)
		}
		proc := trapp.NewProcessor(trapp.Options{Solver: trapp.SolverExactDP})
		proc.Register("links", table, workload.MapOracle(workload.Figure2Master()))

		q, err := trapp.ParseQueryWith(s.sql, schemas)
		if err != nil {
			log.Fatalf("%s: %v", s.label, err)
		}
		res, err := proc.ExecuteCtx(context.Background(), q)
		if err != nil {
			log.Fatalf("%s: %v", s.label, err)
		}
		fmt.Printf("%s: %s\n", s.label, s.note)
		fmt.Printf("    %s\n", s.sql)
		fmt.Printf("    cached bound %v  →  answer %v  (refreshed %d tuples, cost %.0f)\n\n",
			res.Initial, res.Answer, res.Refreshed, res.RefreshCost)
		totalCost += res.RefreshCost
	}
	fmt.Printf("total refresh cost across Q1–Q6: %.0f\n", totalCost)
	fmt.Println("(compare: refreshing all 6 tuples for every query would cost 6 × 29 = 174)")
}
