// Command service demonstrates the TRAPP network service layer: it
// embeds an HTTP server over a small sensor system, executes a bounded
// query and a multi-statement batch over the wire, streams a standing
// query as server-sent events while the sensors move, and drains the
// server gracefully.
//
// Run with:
//
//	go run ./examples/service
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/url"
	"strings"

	"trapp"
)

func main() {
	// One source, three temperature sensors, one cached table "sensors".
	sys := trapp.NewSystem(trapp.Options{})
	src, err := sys.AddSource("hall", nil)
	if err != nil {
		log.Fatal(err)
	}
	schema := trapp.NewSchema(
		trapp.Column{Name: "room", Kind: trapp.Exact},
		trapp.Column{Name: "temp", Kind: trapp.Bounded},
	)
	cache, err := sys.AddCache("monitor", schema)
	if err != nil {
		log.Fatal(err)
	}
	for i, v := range []float64{21.5, 19.0, 23.4} {
		if err := src.AddObject(int64(i+1), []float64{v}, 1, trapp.NewAdaptiveWidth(0.5)); err != nil {
			log.Fatal(err)
		}
		if err := cache.Subscribe(src, int64(i+1), []float64{float64(i + 1)}); err != nil {
			log.Fatal(err)
		}
	}
	if err := sys.Mount("sensors", cache); err != nil {
		log.Fatal(err)
	}

	// Serve it over HTTP on an ephemeral port.
	srv := trapp.NewServer(sys, trapp.ServerConfig{MaxInFlight: 16})
	hs, ln, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	base := "http://" + ln.Addr().String()
	fmt.Println("serving on", base)

	// A single statement and a batch, over the wire. The response mirrors
	// ExecuteCtx bit for bit: bounded answers, refresh accounting, typed
	// outcomes as structured error codes.
	post := func(sql string) {
		body, _ := json.Marshal(map[string]any{"sql": sql})
		resp, err := http.Post(base+"/query", "application/json", bytes.NewReader(body))
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		var out struct {
			Results []struct {
				Answer      struct{ Lo, Hi float64 }
				Met         bool
				RefreshCost float64 `json:"refresh_cost"`
			}
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			log.Fatal(err)
		}
		for _, r := range out.Results {
			fmt.Printf("  %-52s → [%.2f, %.2f] met=%v cost=%g\n", sql, r.Answer.Lo, r.Answer.Hi, r.Met, r.RefreshCost)
		}
	}
	fmt.Println("queries over HTTP:")
	post("SELECT AVG(temp) WITHIN 0.5 FROM sensors")
	post("SELECT MIN(temp) FROM sensors; SELECT MAX(temp) FROM sensors")

	// A standing query as a server-sent-events stream: the engine pushes
	// a new bounded answer whenever it moves.
	resp, err := http.Get(base + "/subscribe?sql=" + url.QueryEscape("SELECT AVG(temp) FROM sensors"))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	events := bufio.NewScanner(resp.Body)
	readUpdate := func() {
		for events.Scan() {
			line := events.Text()
			if strings.HasPrefix(line, "data:") && strings.Contains(line, "answer") {
				fmt.Println("  update:", strings.TrimSpace(strings.TrimPrefix(line, "data:")))
				return
			}
		}
	}
	fmt.Println("subscription stream:")
	readUpdate() // initial answer
	if err := src.SetValue(2, []float64{25.0}); err != nil {
		log.Fatal(err)
	}
	sys.Settle()
	readUpdate() // pushed after the sensor moved

	// Graceful drain: the stream closes, in-flight requests finish.
	if err := srv.Shutdown(context.Background()); err != nil {
		log.Fatal(err)
	}
	_ = hs.Shutdown(context.Background())
	sys.Close()
	fmt.Println("drained cleanly")
}
