// Command adaptive demonstrates the Appendix A adaptive bound-width
// controller on the full source/cache architecture. Twenty random-walk
// values are replicated under three width policies — too narrow, too wide,
// and adaptive — while a mixed load of updates and constrained queries
// runs. Narrow bounds trigger constant value-initiated refreshes; wide
// bounds force queries to pay for query-initiated refreshes; the adaptive
// controller finds a middle ground.
//
// Run with:
//
//	go run ./examples/adaptive
package main

import (
	"fmt"

	"trapp/internal/experiment"
)

func main() {
	fmt.Println("TRAPP adaptive bound-width demo (paper Appendix A)")
	fmt.Println()
	fmt.Println("20 random-walk objects, 120 update rounds, a SUM query every 5 rounds:")
	fmt.Println()

	rows := experiment.Adaptive(20, 120, experiment.DefaultSeed)
	fmt.Printf("%-22s %-18s %-18s %-10s\n",
		"width policy", "value refreshes", "query refreshes", "total")
	for _, r := range rows {
		fmt.Printf("%-22s %-18d %-18d %-10d\n",
			r.Policy, r.ValueRefreshes, r.QueryRefreshes, r.TotalMessages)
	}

	fmt.Println()
	fmt.Println("Narrow bounds are precise but escape constantly (value-initiated);")
	fmt.Println("wide bounds never escape but every query must pay (query-initiated);")
	fmt.Println("the adaptive policy balances the two signals per object.")
}
